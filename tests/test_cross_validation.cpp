// Cross-validation fuzzing: the analytic Definition-1 checker and the
// operational replay validator are independent implementations of the same
// model, so they must issue the same verdict on *any* schedule — including
// randomly mutated (usually broken) ones.  This is the test that keeps the
// two validators honest against each other.

#include <gtest/gtest.h>

#include "mst/common/rng.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/platform/generator.hpp"
#include "mst/schedule/feasibility.hpp"
#include "mst/sim/static_replay.hpp"

namespace mst {
namespace {

/// Applies one random mutation to a chain schedule: nudge a start time, an
/// emission time, or reroute a task.  Times stay non-negative so that both
/// validators see the same schedule domain.
void mutate(ChainSchedule& s, Rng& rng) {
  if (s.tasks.empty()) return;
  ChainTask& t = s.tasks[static_cast<std::size_t>(
      rng.uniform(0, static_cast<Time>(s.tasks.size()) - 1))];
  switch (rng.uniform(0, 2)) {
    case 0:
      t.start = std::max<Time>(0, t.start + rng.uniform(-4, 4));
      break;
    case 1: {
      Time& e = t.emissions[static_cast<std::size_t>(
          rng.uniform(0, static_cast<Time>(t.emissions.size()) - 1))];
      e = std::max<Time>(0, e + rng.uniform(-4, 4));
      break;
    }
    default: {
      // Reroute to a random destination, rebuilding a (possibly bogus)
      // emission vector of matching length.
      const auto dest = static_cast<std::size_t>(
          rng.uniform(0, static_cast<Time>(s.chain.size()) - 1));
      t.proc = dest;
      t.emissions.resize(dest + 1);
      for (Time& e : t.emissions) e = std::max<Time>(0, rng.uniform(0, 20));
      break;
    }
  }
}

void mutate(SpiderSchedule& s, Rng& rng) {
  if (s.tasks.empty()) return;
  SpiderTask& t = s.tasks[static_cast<std::size_t>(
      rng.uniform(0, static_cast<Time>(s.tasks.size()) - 1))];
  if (rng.chance(0.5)) {
    t.start = std::max<Time>(0, t.start + rng.uniform(-4, 4));
  } else {
    Time& e = t.emissions[static_cast<std::size_t>(
        rng.uniform(0, static_cast<Time>(t.emissions.size()) - 1))];
    e = std::max<Time>(0, e + rng.uniform(-4, 4));
  }
}

class CrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossValidation, CheckerAndReplayAgreeOnMutatedChainSchedules) {
  Rng rng(GetParam());
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 40; ++trial) {
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 4)), params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 8));
    ChainSchedule s = ChainScheduler::schedule(chain, n);
    const int mutations = static_cast<int>(rng.uniform(0, 3));
    for (int m = 0; m < mutations; ++m) mutate(s, rng);

    const bool analytic_ok = check_feasibility(s).ok();
    const bool replay_ok = sim::replay(s).ok;
    EXPECT_EQ(analytic_ok, replay_ok)
        << chain.describe() << " n=" << n << " mutations=" << mutations << "\nanalytic: "
        << check_feasibility(s).summary();
  }
}

TEST_P(CrossValidation, CheckerAndReplayAgreeOnMutatedSpiderSchedules) {
  Rng rng(GetParam() + 1000);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 30; ++trial) {
    Rng inst = rng.split();
    const Spider spider =
        random_spider(inst, static_cast<std::size_t>(rng.uniform(1, 3)), 2, params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 7));
    SpiderSchedule s = SpiderScheduler::schedule(spider, n);
    const int mutations = static_cast<int>(rng.uniform(0, 3));
    for (int m = 0; m < mutations; ++m) mutate(s, rng);

    const bool analytic_ok = check_feasibility(s).ok();
    const bool replay_ok = sim::replay(s).ok;
    EXPECT_EQ(analytic_ok, replay_ok)
        << spider.describe() << " n=" << n << " mutations=" << mutations;
  }
}

TEST_P(CrossValidation, ReplayMakespanMatchesWhenFeasible) {
  // Whenever both validators accept, the replayed makespan must equal the
  // analytic one.
  Rng rng(GetParam() + 2000);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 30; ++trial) {
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 4)), params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 8));
    ChainSchedule s = ChainScheduler::schedule(chain, n);
    mutate(s, rng);  // may or may not break it
    if (check_feasibility(s).ok()) {
      const sim::ReplayResult r = sim::replay(s);
      ASSERT_TRUE(r.ok);
      EXPECT_EQ(r.makespan, s.makespan());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation, ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace mst
