// Tests of the tree-covering heuristics (the paper's §8 outlook).

#include <gtest/gtest.h>

#include <cmath>

#include "mst/baselines/bounds.hpp"
#include "mst/common/rng.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/heuristics/tree_cover.hpp"
#include "mst/heuristics/tree_schedule.hpp"
#include "mst/platform/generator.hpp"
#include "mst/sim/platform_sim.hpp"

namespace mst {
namespace {

TEST(TreeCover, SpiderShapedTreeCoversItself) {
  const Spider spider{Chain::from_vectors({2, 3}, {3, 5}), Chain::from_vectors({4}, {2})};
  const Tree tree = tree_from_spider(spider);
  const SpiderCover cover = cover_tree_with_spider(tree);
  EXPECT_EQ(cover.spider, spider);
}

TEST(TreeCover, PicksTheFasterBranch) {
  // Root child with two sub-branches: a fast leaf and a slow leaf; the
  // cover must route through the fast one.
  Tree tree;
  const NodeId head = tree.add_node(0, {1, 4});
  tree.add_node(head, {1, 1});     // fast branch
  const NodeId slow = tree.add_node(head, {5, 50});  // slow branch
  (void)slow;
  const SpiderCover cover = cover_tree_with_spider(tree);
  ASSERT_EQ(cover.spider.num_legs(), 1u);
  ASSERT_EQ(cover.spider.leg(0).size(), 2u);
  EXPECT_EQ(cover.spider.leg(0).work(1), 1);
  EXPECT_EQ(cover.node_of[0][1], 2u);
}

TEST(TreeCover, EveryLegIsARealPath) {
  Rng rng(99);
  GeneratorParams params{1, 9, PlatformClass::kUniform};
  for (int trial = 0; trial < 10; ++trial) {
    Rng inst = rng.split();
    const Tree tree = random_tree(inst, static_cast<std::size_t>(rng.uniform(1, 12)), params);
    const SpiderCover cover = cover_tree_with_spider(tree);
    ASSERT_EQ(cover.spider.num_legs(), tree.children(0).size());
    for (std::size_t l = 0; l < cover.spider.num_legs(); ++l) {
      const auto& nodes = cover.node_of[l];
      ASSERT_EQ(nodes.size(), cover.spider.leg(l).size());
      // Consecutive nodes are parent/child in the tree and processors match.
      for (std::size_t d = 0; d < nodes.size(); ++d) {
        EXPECT_EQ(tree.proc(nodes[d]), cover.spider.leg(l).proc(d));
        if (d > 0) {
          EXPECT_EQ(tree.parent(nodes[d]), nodes[d - 1]);
        }
      }
      EXPECT_EQ(tree.parent(nodes[0]), 0u);
    }
  }
}

TEST(TreeCover, RejectsEmptyTree) {
  Tree empty;
  EXPECT_THROW(cover_tree_with_spider(empty), std::invalid_argument);
}

TEST(TreeSchedule, PlanExecutesOnTheTree) {
  Rng rng(111);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 8; ++trial) {
    Rng inst = rng.split();
    const Tree tree = random_tree(inst, static_cast<std::size_t>(rng.uniform(1, 10)), params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 10));
    const TreeScheduleResult result = schedule_tree_via_cover(tree, n);
    ASSERT_EQ(result.destinations.size(), n);
    for (NodeId v : result.destinations) {
      EXPECT_GE(v, 1u);
      EXPECT_LT(v, tree.size());
    }
    const sim::SimResult simulated = sim::simulate_dispatch(tree, result.destinations);
    ASSERT_EQ(simulated.num_tasks(), n);
    // Eager execution of the plan cannot be slower than the plan itself.
    EXPECT_LE(simulated.makespan, result.makespan);
    // No makespan may beat the steady-state lower bound of the full tree.
    const double rate = tree_steady_state_rate(tree);
    const Time lb = static_cast<Time>(std::ceil(static_cast<double>(n) / rate - 1e-9));
    EXPECT_GE(simulated.makespan, lb);
  }
}

TEST(TreeSchedule, ChainShapedTreeIsScheduledOptimally) {
  // For a chain-shaped tree the cover is the chain itself, so the heuristic
  // is exact.
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  const TreeScheduleResult result = schedule_tree_via_cover(tree_from_chain(chain), 5);
  EXPECT_EQ(result.makespan, 14);
}

TEST(TreeSchedule, SpiderShapedTreeIsScheduledOptimally) {
  const Spider spider{Chain::from_vectors({2, 3}, {3, 5}), Chain::from_vectors({4}, {2})};
  const TreeScheduleResult result = schedule_tree_via_cover(tree_from_spider(spider), 6);
  EXPECT_EQ(result.makespan, SpiderScheduler::makespan(spider, 6));
}

TEST(TreeSchedule, RejectsZeroTasks) {
  const Chain chain = Chain::from_vectors({1}, {1});
  EXPECT_THROW(schedule_tree_via_cover(tree_from_chain(chain), 0), std::invalid_argument);
}

}  // namespace
}  // namespace mst
