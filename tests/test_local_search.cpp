// Tests of the tree local-search heuristic.

#include <gtest/gtest.h>

#include "mst/baselines/tree_asap.hpp"
#include "mst/common/rng.hpp"
#include "mst/heuristics/local_search.hpp"
#include "mst/platform/generator.hpp"

namespace mst {
namespace {

TEST(LocalSearch, EmptySequenceIsFine) {
  const Tree tree = tree_from_chain(Chain::from_vectors({1}, {1}));
  const LocalSearchResult r = improve_tree_dispatch(tree, {});
  EXPECT_TRUE(r.dests.empty());
  EXPECT_EQ(r.makespan, 0);
}

TEST(LocalSearch, NeverWorseThanTheInput) {
  Rng rng(41);
  GeneratorParams params{1, 9, PlatformClass::kUniform};
  for (int trial = 0; trial < 10; ++trial) {
    Rng inst = rng.split();
    const Tree tree = random_tree(inst, static_cast<std::size_t>(rng.uniform(2, 8)), params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 8));
    // Deliberately bad start: everything to the last (often deep) node.
    std::vector<NodeId> bad(n, tree.size() - 1);
    const Time before = asap_tree_makespan(tree, bad);
    const LocalSearchResult r = improve_tree_dispatch(tree, bad);
    EXPECT_LE(r.makespan, before) << tree.describe();
    EXPECT_EQ(r.makespan, asap_tree_makespan(tree, r.dests));
  }
}

TEST(LocalSearch, ImprovesAnObviouslyBadAssignment) {
  // Fork: one fast slave, one terrible slave; all tasks start on the bad one.
  Tree tree;
  tree.add_node(0, {1, 1});     // node 1: fast
  tree.add_node(0, {1, 50});    // node 2: slow
  const std::vector<NodeId> bad(6, 2);
  const LocalSearchResult r = improve_tree_dispatch(tree, bad);
  EXPECT_LT(r.makespan, asap_tree_makespan(tree, bad));
  EXPECT_GT(r.moves, 0u);
  // Most tasks must migrate to the fast slave.
  std::size_t on_fast = 0;
  for (NodeId v : r.dests) on_fast += (v == 1);
  EXPECT_GE(on_fast, 5u);
}

TEST(LocalSearch, StartsFromGreedyAndStaysBounded) {
  Rng rng(42);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 8; ++trial) {
    Rng inst = rng.split();
    const Tree tree = random_tree(inst, static_cast<std::size_t>(rng.uniform(1, 6)), params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 6));
    const LocalSearchResult r = local_search_tree(tree, n);
    ASSERT_EQ(r.dests.size(), n);
    EXPECT_LE(r.makespan, forward_greedy_tree_makespan(tree, n));
    EXPECT_GE(r.makespan, brute_force_tree_makespan(tree, n)) << tree.describe();
  }
}

TEST(LocalSearch, ReachesTheOptimumOnTinyInstances) {
  // With a generous pass budget the descent should close small gaps
  // entirely on 2-slave forks (the neighborhood covers all assignments).
  Rng rng(43);
  GeneratorParams params{1, 6, PlatformClass::kUniform};
  int optimal_hits = 0;
  const int trials = 10;
  for (int trial = 0; trial < trials; ++trial) {
    Rng inst = rng.split();
    const Tree tree = random_tree(inst, 2, params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 5));
    const LocalSearchResult r = local_search_tree(tree, n, 32);
    if (r.makespan == brute_force_tree_makespan(tree, n)) ++optimal_hits;
  }
  EXPECT_GE(optimal_hits, trials - 2);  // local optima may rarely bite
}

TEST(LocalSearch, IsDeterministic) {
  Rng rng(44);
  const Tree tree = random_tree(rng, 6, {1, 9, PlatformClass::kUniform});
  const LocalSearchResult a = local_search_tree(tree, 7);
  const LocalSearchResult b = local_search_tree(tree, 7);
  EXPECT_EQ(a.dests, b.dests);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(LocalSearch, RespectsPassBudget) {
  Rng rng(45);
  const Tree tree = random_tree(rng, 5, {1, 9, PlatformClass::kUniform});
  const LocalSearchResult r = local_search_tree(tree, 6, 1);
  EXPECT_LE(r.passes, 1u);
}

TEST(LocalSearch, RejectsInvalidInitialDestinations) {
  const Tree tree = tree_from_chain(Chain::from_vectors({1}, {1}));
  EXPECT_THROW(improve_tree_dispatch(tree, {0}), std::invalid_argument);
  EXPECT_THROW(improve_tree_dispatch(tree, {9}), std::invalid_argument);
}

}  // namespace
}  // namespace mst
