// Tests of the Definition 3 communication-vector order — the tie-breaking
// heart of the backward construction.

#include <gtest/gtest.h>

#include "mst/common/rng.hpp"
#include "mst/schedule/comm_vector.hpp"

namespace mst {
namespace {

TEST(CommVectorOrder, FirstDifferenceDecides) {
  EXPECT_TRUE(precedes({1, 5}, {2, 0}));
  EXPECT_FALSE(precedes({2, 0}, {1, 5}));
  EXPECT_TRUE(precedes({3, 4, 1}, {3, 5, 0}));
}

TEST(CommVectorOrder, FirstDifferenceBeatsLength) {
  // Difference within the common prefix dominates the length rule.
  EXPECT_TRUE(precedes({1, 9, 9}, {2}));
  EXPECT_FALSE(precedes({2}, {1, 9, 9}));
}

TEST(CommVectorOrder, EqualPrefixLongerIsSmaller) {
  // Definition 3 second clause: i > j with equal common prefix => A ≺ B.
  EXPECT_TRUE(precedes({4, 7, 1}, {4, 7}));
  EXPECT_FALSE(precedes({4, 7}, {4, 7, 1}));
  EXPECT_TRUE(precedes({5, 5}, {5}));
}

TEST(CommVectorOrder, EqualVectorsAreUnordered) {
  EXPECT_FALSE(precedes({3, 1}, {3, 1}));
  EXPECT_TRUE(precedes_or_equal({3, 1}, {3, 1}));
}

TEST(CommVectorOrder, SingleElementVectors) {
  EXPECT_TRUE(precedes({1}, {2}));
  EXPECT_FALSE(precedes({2}, {1}));
  EXPECT_FALSE(precedes({2}, {2}));
}

TEST(CommVectorOrder, NegativeTimesCompareNumerically) {
  // The decision form produces candidate vectors with negative entries; the
  // order must stay purely numeric there.
  EXPECT_TRUE(precedes({-5, 3}, {-4, 0}));
  EXPECT_TRUE(precedes({-1}, {0}));
}

TEST(CommVectorOrder, PaperTieBreakPrefersShorterVector) {
  // The selection loop interprets "greater" as "later first emission, ties
  // toward the nearer processor" — i.e. among prefix-equal candidates the
  // shorter vector wins.
  const CommVector nearer = {10};
  const CommVector farther = {10, 12};
  EXPECT_TRUE(precedes(farther, nearer));
}

TEST(CommVectorOrder, ToStringFormatsBraces) {
  EXPECT_EQ(to_string(CommVector{1, 2, 3}), "{1, 2, 3}");
  EXPECT_EQ(to_string(CommVector{}), "{}");
}

/// Property sweep: on any set of pairwise-distinct vectors, `precedes` is a
/// strict total order (irreflexive, antisymmetric, transitive, total).
class CommVectorOrderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CommVectorOrderProperty, IsStrictTotalOrder) {
  Rng rng(GetParam());
  std::vector<CommVector> vecs;
  for (int i = 0; i < 24; ++i) {
    CommVector v(static_cast<std::size_t>(rng.uniform(1, 4)));
    for (Time& t : v) t = rng.uniform(-3, 3);
    vecs.push_back(std::move(v));
  }
  for (const CommVector& a : vecs) {
    EXPECT_FALSE(precedes(a, a));
    for (const CommVector& b : vecs) {
      if (a == b) continue;
      EXPECT_NE(precedes(a, b), precedes(b, a)) << to_string(a) << " vs " << to_string(b);
      for (const CommVector& c : vecs) {
        if (precedes(a, b) && precedes(b, c)) {
          EXPECT_TRUE(precedes(a, c))
              << to_string(a) << " ≺ " << to_string(b) << " ≺ " << to_string(c);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommVectorOrderProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace mst
