// Tests of the tree ASAP estimator, tree forward greedy and the exhaustive
// tree optimum — including the strong cross-check that the exhaustive tree
// optimum on spider-shaped trees matches the paper's (optimal) spider
// algorithm.

#include <gtest/gtest.h>

#include "mst/baselines/tree_asap.hpp"
#include "mst/common/rng.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/platform/generator.hpp"
#include "mst/sim/platform_sim.hpp"

namespace mst {
namespace {

TEST(TreeAsap, SingleTaskTransit) {
  const Tree tree = tree_from_chain(Chain::from_vectors({2, 3}, {3, 5}));
  TreeAsapState state(tree);
  EXPECT_EQ(state.peek_completion(1), 5);   // 2 + 3
  EXPECT_EQ(state.peek_completion(2), 10);  // 2 + 3 + 5
  EXPECT_EQ(state.commit(2), 10);
}

TEST(TreeAsap, PeekMatchesCommit) {
  Rng rng(21);
  const Tree tree = random_tree(rng, 7, {1, 8, PlatformClass::kUniform});
  TreeAsapState state(tree);
  for (int i = 0; i < 20; ++i) {
    const auto dest = static_cast<NodeId>(rng.uniform(1, static_cast<Time>(tree.size()) - 1));
    const Time predicted = state.peek_completion(dest);
    EXPECT_EQ(state.commit(dest), predicted);
  }
}

TEST(TreeAsap, MatchesEventSimulatorExactly) {
  Rng rng(22);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 15; ++trial) {
    Rng inst = rng.split();
    const Tree tree = random_tree(inst, static_cast<std::size_t>(rng.uniform(1, 10)), params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 12));
    std::vector<NodeId> dests(n);
    for (NodeId& d : dests) {
      d = static_cast<NodeId>(rng.uniform(1, static_cast<Time>(tree.size()) - 1));
    }
    EXPECT_EQ(asap_tree_makespan(tree, dests), sim::simulate_dispatch(tree, dests).makespan)
        << tree.describe() << " trial " << trial;
  }
}

TEST(TreeAsap, RejectsMasterDestination) {
  const Tree tree = tree_from_chain(Chain::from_vectors({1}, {1}));
  TreeAsapState state(tree);
  EXPECT_THROW((void)state.peek_completion(0), std::invalid_argument);
  EXPECT_THROW(state.commit(5), std::invalid_argument);
}

TEST(TreeGreedy, MatchesChainGreedyOnChains) {
  // On chain-shaped trees the tree greedy must behave like the chain ECT
  // greedy (same estimates, same scan order).
  Rng rng(23);
  GeneratorParams params{1, 9, PlatformClass::kUniform};
  for (int trial = 0; trial < 10; ++trial) {
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 5)), params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 10));
    const Time tree_greedy = forward_greedy_tree_makespan(tree_from_chain(chain), n);
    // Compare against the optimal as a sanity floor and the chain T∞ roof.
    EXPECT_GE(tree_greedy, ChainScheduler::makespan(chain, n));
    EXPECT_LE(tree_greedy, chain.t_infinity(n) * 2);
  }
}

TEST(TreeExact, MatchesChainOptimalOnChains) {
  Rng rng(24);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 8; ++trial) {
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 3)), params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 6));
    EXPECT_EQ(brute_force_tree_makespan(tree_from_chain(chain), n),
              ChainScheduler::makespan(chain, n))
        << chain.describe() << " n=" << n;
  }
}

TEST(TreeExact, MatchesSpiderOptimalOnSpiders) {
  // Theorem 3, re-verified through a completely independent search space
  // (tree destination sequences instead of the fork reduction).
  Rng rng(25);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 8; ++trial) {
    Rng inst = rng.split();
    const auto legs = static_cast<std::size_t>(rng.uniform(1, 3));
    const Spider spider = random_spider(inst, legs, 2, params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 5));
    EXPECT_EQ(brute_force_tree_makespan(tree_from_spider(spider), n),
              SpiderScheduler::makespan(spider, n))
        << spider.describe() << " n=" << n;
  }
}

TEST(TreeExact, GreedyIsBoundedByExactOptimum) {
  Rng rng(26);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 6; ++trial) {
    Rng inst = rng.split();
    const Tree tree = random_tree(inst, static_cast<std::size_t>(rng.uniform(1, 5)), params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 5));
    EXPECT_GE(forward_greedy_tree_makespan(tree, n), brute_force_tree_makespan(tree, n))
        << tree.describe() << " n=" << n;
  }
}

TEST(TreeExact, RejectsDegenerateInputs) {
  Tree empty;
  EXPECT_THROW(brute_force_tree_makespan(empty, 1), std::invalid_argument);
  const Tree tree = tree_from_chain(Chain::from_vectors({1}, {1}));
  EXPECT_THROW(brute_force_tree_makespan(tree, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mst
