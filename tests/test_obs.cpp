// The deterministic observability layer: metric handle semantics, registry
// registration edge cases, commutative merging (the sweep aggregation
// contract), trace recording/serialization, and the end-to-end pins — the
// Figure-2 solve replayed into a well-formed Chrome trace, and sweep metric
// JSON byte-identical at any thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <variant>
#include <vector>

#include "mst/api/registry.hpp"
#include "mst/api/trace_replay.hpp"
#include "mst/obs/metrics.hpp"
#include "mst/obs/observation.hpp"
#include "mst/obs/trace.hpp"
#include "mst/platform/chain.hpp"
#include "mst/scenario/report.hpp"
#include "mst/scenario/runner.hpp"
#include "mst/scenario/spec.hpp"

namespace mst {
namespace {

using obs::Counter;
using obs::DeterminismClass;
using obs::Gauge;
using obs::Histogram;
using obs::MetricSample;
using obs::MetricsRegistry;
using obs::MetricType;
using obs::TraceSink;

TEST(Metrics, CounterSumsAndGaugeKeepsMaximum) {
  MetricsRegistry registry;
  Counter counter = registry.counter("test.counter");
  ASSERT_TRUE(counter.enabled());
  counter.increment();
  counter.add(41);

  Gauge gauge = registry.gauge("test.gauge");
  gauge.record(7);
  gauge.record(3);  // below the high water: ignored
  gauge.record(9);

  const std::vector<MetricSample> samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "test.counter");
  EXPECT_EQ(samples[0].value, 42);
  EXPECT_EQ(samples[1].name, "test.gauge");
  EXPECT_EQ(samples[1].value, 9);
}

TEST(Metrics, HistogramBucketsByPowerOfTwo) {
  MetricsRegistry registry;
  Histogram histogram = registry.histogram("test.hist");
  // bucket_of: 0 for <= 0, else bit_width clamped to the last bucket.
  EXPECT_EQ(Histogram::bucket_of(-5), 0u);
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(std::int64_t{1} << 60), obs::kBucketCount - 1);

  histogram.observe(0);
  histogram.observe(3);
  histogram.observe(3);
  histogram.observe(1000);
  const std::vector<MetricSample> samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].count, 4);
  EXPECT_EQ(samples[0].sum, 1006);
  EXPECT_EQ(samples[0].buckets[0], 1);
  EXPECT_EQ(samples[0].buckets[2], 2);
  EXPECT_EQ(samples[0].buckets[10], 1);  // 1000 in [512, 1024)
}

TEST(Metrics, DisabledHandlesAreNoOps) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  EXPECT_FALSE(counter.enabled());
  EXPECT_FALSE(gauge.enabled());
  EXPECT_FALSE(histogram.enabled());
  // Must not crash; there is nothing to record into.
  counter.increment();
  gauge.record(5);
  histogram.observe(5);
}

TEST(Metrics, RegistrationIsIdempotentAndTypeClashesDrop) {
  MetricsRegistry registry;
  Counter a = registry.counter("shared");
  Counter b = registry.counter("shared");
  a.increment();
  b.increment();
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.snapshot()[0].value, 2);

  // Same name, different type: refused with a disabled handle and a
  // deterministic drop count — never silent aliasing.
  Gauge clash = registry.gauge("shared");
  EXPECT_FALSE(clash.enabled());
  EXPECT_EQ(registry.dropped(), 1);

  // Unusable names are refused the same way.
  EXPECT_FALSE(registry.counter("").enabled());
  const std::string oversized(MetricsRegistry::kNameCapacity + 10, 'x');
  EXPECT_FALSE(registry.counter(oversized).enabled());
  EXPECT_EQ(registry.dropped(), 3);
}

TEST(Metrics, CapacityOverflowDegradesGracefully) {
  MetricsRegistry registry;
  char name[32];
  for (std::size_t i = 0; i < MetricsRegistry::kCapacity; ++i) {
    std::snprintf(name, sizeof name, "metric.%04zu", i);
    EXPECT_TRUE(registry.counter(name).enabled());
  }
  EXPECT_EQ(registry.size(), MetricsRegistry::kCapacity);
  Counter overflow = registry.counter("metric.overflow");
  EXPECT_FALSE(overflow.enabled());
  overflow.increment();  // still a safe no-op
  EXPECT_EQ(registry.dropped(), 1);
}

TEST(Metrics, SnapshotSortsByNameAndSegregatesWallTime) {
  MetricsRegistry registry;
  registry.counter("zebra").increment();
  registry.counter("alpha").increment();
  registry.counter("wall.us", DeterminismClass::kWallTime).add(1234);

  const std::vector<MetricSample> deterministic = registry.snapshot();
  ASSERT_EQ(deterministic.size(), 2u);
  EXPECT_EQ(deterministic[0].name, "alpha");
  EXPECT_EQ(deterministic[1].name, "zebra");

  const std::vector<MetricSample> all = registry.snapshot(/*include_wall_time=*/true);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[1].name, "wall.us");
  EXPECT_EQ(all[1].determinism, DeterminismClass::kWallTime);

  const std::string json = registry.to_json();
  EXPECT_EQ(json.find("wall.us"), std::string::npos);
  EXPECT_NE(registry.to_json(/*include_wall_time=*/true).find("wall.us"), std::string::npos);
}

TEST(Metrics, MergeIsCommutative) {
  const auto populate_a = [](MetricsRegistry& r) {
    r.counter("events").add(10);
    r.gauge("peak").record(5);
    r.histogram("latency").observe(3);
  };
  const auto populate_b = [](MetricsRegistry& r) {
    r.counter("events").add(7);
    r.gauge("peak").record(9);
    r.histogram("latency").observe(100);
    r.counter("only_b").increment();
  };

  MetricsRegistry a1;
  MetricsRegistry b1;
  populate_a(a1);
  populate_b(b1);
  MetricsRegistry ab;
  a1.merge_into(ab);
  b1.merge_into(ab);

  MetricsRegistry a2;
  MetricsRegistry b2;
  populate_a(a2);
  populate_b(b2);
  MetricsRegistry ba;
  b2.merge_into(ba);
  a2.merge_into(ba);

  EXPECT_EQ(ab.to_json(true), ba.to_json(true));
  const std::vector<MetricSample> samples = ab.snapshot();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].name, "events");
  EXPECT_EQ(samples[0].value, 17);
  EXPECT_EQ(samples[2].name, "only_b");
  EXPECT_EQ(samples[3].name, "peak");
  EXPECT_EQ(samples[3].value, 9);
}

TEST(Trace, RecordsAndSerializesChromeEvents) {
  TraceSink sink;
  const obs::TrackId cpu = sink.track("cpu 1");
  const obs::NameId exec = sink.name("exec");
  sink.begin(cpu, exec, 3, /*arg=*/0);
  sink.end(cpu, exec, 8);
  sink.instant(cpu, exec, 10);
  sink.counter(cpu, exec, 11, 42);
  EXPECT_EQ(sink.events().size(), 4u);
  EXPECT_EQ(sink.dropped(), 0);
  EXPECT_EQ(sink.track_label(cpu), "cpu 1");

  const std::string json = sink.to_chrome_json();
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);  // track metadata
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
}

TEST(Trace, OverflowAndInvalidHandlesDropCounted) {
  TraceSink sink(/*event_capacity=*/4, /*track_capacity=*/1, /*name_capacity=*/1);
  const obs::TrackId track = sink.track("only");
  const obs::NameId name = sink.name("tick");
  EXPECT_EQ(sink.track("second"), obs::kInvalidTrack);  // table full
  for (int i = 0; i < 6; ++i) sink.instant(track, name, i);
  EXPECT_EQ(sink.events().size(), 4u);
  // 1 refused track + 2 overflowed events.
  EXPECT_EQ(sink.dropped(), 3);
  sink.instant(obs::kInvalidTrack, name, 0);
  EXPECT_EQ(sink.dropped(), 4);
}

/// Structural walk of the serialized trace: per track, `ts` must be
/// monotone and 'B'/'E' must alternate (every span closed).  Parses the
/// flat event array with line-level string ops — the serializer emits one
/// event object per line.
void check_trace_structure(const std::string& json) {
  std::vector<std::int64_t> last_ts;
  std::vector<int> open_spans;
  std::size_t pos = 0;
  std::size_t checked = 0;
  while ((pos = json.find("\"ph\": \"", pos)) != std::string::npos) {
    const char phase = json[pos + 7];
    const std::size_t line_end = json.find('\n', pos);
    const std::string line = json.substr(pos, line_end - pos);
    pos = line_end;
    if (phase == 'M') continue;  // metadata rows carry no ts
    const std::size_t tid_at = line.find("\"tid\": ");
    const std::size_t ts_at = line.find("\"ts\": ");
    ASSERT_NE(tid_at, std::string::npos) << line;
    ASSERT_NE(ts_at, std::string::npos) << line;
    const auto tid = static_cast<std::size_t>(std::stoll(line.substr(tid_at + 7)));
    const std::int64_t ts = std::stoll(line.substr(ts_at + 6));
    if (tid >= last_ts.size()) {
      last_ts.resize(tid + 1, 0);
      open_spans.resize(tid + 1, 0);
    }
    EXPECT_GE(ts, last_ts[tid]) << "non-monotone ts on tid " << tid;
    last_ts[tid] = ts;
    if (phase == 'B') ++open_spans[tid];
    if (phase == 'E') {
      EXPECT_GT(open_spans[tid], 0) << "span end without begin on tid " << tid;
      --open_spans[tid];
    }
    ++checked;
  }
  EXPECT_GT(checked, 0u);
  for (const int open : open_spans) EXPECT_EQ(open, 0);
}

TEST(TraceReplay, Fig2ScheduleProducesWellFormedGantt) {
  // The paper's worked example: chain c=(2,3), w=(3,5), 5 tasks, makespan 14.
  const api::Platform platform = Chain::from_vectors({2, 3}, {3, 5});
  MetricsRegistry metrics;
  api::SolveOptions options;
  options.metrics = &metrics;
  const api::SolveResult result = api::registry().solve(platform, "optimal", 5, options);
  ASSERT_EQ(result.makespan, 14);

  TraceSink trace;
  const sim::SimResult replay = api::replay_schedule(result, {&metrics, &trace});
  EXPECT_EQ(replay.makespan, 14);
  EXPECT_EQ(replay.num_tasks(), 5u);

  // The solve recorded into the registry; the replay added simulator counts.
  const std::vector<MetricSample> samples = metrics.snapshot();
  const auto find = [&](const std::string& name) {
    const auto it = std::find_if(samples.begin(), samples.end(),
                                 [&](const MetricSample& s) { return s.name == name; });
    return it == samples.end() ? std::int64_t{-1} : it->value;
  };
  EXPECT_EQ(find("api.solve.optimal"), 1);
  EXPECT_EQ(find("sim.tasks.completed"), 5);
  EXPECT_GT(find("sim.engine.events"), 0);

  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("\"cpu 1\""), std::string::npos);
  EXPECT_NE(json.find("\"link 0->1\""), std::string::npos);
  check_trace_structure(json);
}

TEST(TraceReplay, UnmaterializedResultThrows) {
  const api::Platform platform = Chain::from_vectors({2, 3}, {3, 5});
  api::SolveOptions options;
  options.materialize = false;
  const api::SolveResult result = api::registry().solve(platform, "optimal", 5, options);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(result.schedule));
  EXPECT_THROW((void)api::replay_schedule(result), std::invalid_argument);
}

TEST(SweepMetrics, AggregateIsByteIdenticalAtAnyThreadCount) {
  // A small grid with enough cells to actually interleave workers, run at 1
  // and 4 threads into fresh parent registries: the merged JSON — like the
  // CSV — must be byte-identical (CI repeats this via mstctl at 2 vs 8).
  scenario::SweepSpec spec;
  spec.name = "obs";
  spec.kinds = {api::PlatformKind::kChain, api::PlatformKind::kSpider};
  spec.sizes = {4, 8};
  spec.instances = 2;
  spec.algorithms = {"optimal", "forward-greedy"};
  spec.tasks = {6};
  spec.deadlines = {30};
  const std::vector<scenario::Cell> cells = scenario::expand(spec);
  ASSERT_GT(cells.size(), 8u);

  std::vector<std::string> jsons;
  for (const unsigned threads : {1u, 4u}) {
    MetricsRegistry parent;
    scenario::RunOptions options;
    options.threads = threads;
    options.metrics = &parent;
    const std::vector<scenario::CellOutcome> outcomes = scenario::run_cells(cells, options);
    for (const scenario::CellOutcome& out : outcomes) {
      EXPECT_TRUE(out.ok()) << out.error;
      // Per-cell snapshots materialized (wall-time entries included there).
      EXPECT_FALSE(out.metrics.empty());
    }
    jsons.push_back(parent.to_json());
    EXPECT_EQ(parent.dropped(), 0);
  }
  ASSERT_EQ(jsons.size(), 2u);
  EXPECT_EQ(jsons[0], jsons[1]);
  // The aggregate carries the runner's own progress metrics too.
  EXPECT_NE(jsons[0].find("scenario.cells.completed"), std::string::npos);
  // Wall-time entries stay out of the deterministic serialization.
  EXPECT_EQ(jsons[0].find("scenario.cell.wall_us"), std::string::npos);
}

}  // namespace
}  // namespace mst
