// Unit tests for mst/common: deterministic RNG, statistics, tables, CLI
// parsing and the invariant macros.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>

#include "mst/common/assert.hpp"
#include "mst/common/cli.hpp"
#include "mst/common/rng.hpp"
#include "mst/common/stats.hpp"
#include "mst/common/table.hpp"
#include "mst/common/time.hpp"

namespace mst {
namespace {

TEST(Rng, IsDeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DiffersAcrossSeeds) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformCoversWholeRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(5, 5), 5);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(2, 1), std::invalid_argument);
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(1234);
  Rng p2(1234);
  Rng c1 = p1.split();
  Rng c2 = p2.split();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(Rng, SplitChildDiffersFromParentContinuation) {
  Rng parent(99);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (child.next_u64() == parent.next_u64());
  EXPECT_LT(equal, 4);
}

TEST(Sample, MeanAndStddev) {
  Sample s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(Sample, EmptySampleDefaults) {
  Sample s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_THROW((void)s.min(), std::invalid_argument);
  EXPECT_THROW((void)s.quantile(0.5), std::invalid_argument);
}

TEST(Sample, QuantilesInterpolate) {
  Sample s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(Sample, MinMax) {
  Sample s;
  for (double v : {3.0, -1.0, 7.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(Stats, LogLogSlopeRecoversExponent) {
  std::vector<double> x;
  std::vector<double> y;
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    x.push_back(v);
    y.push_back(3.0 * v * v);  // exponent 2
  }
  EXPECT_NEAR(fit_loglog_slope(x, y), 2.0, 1e-9);
}

TEST(Stats, LogLogSlopeValidation) {
  EXPECT_THROW(fit_loglog_slope({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_loglog_slope({1.0, 2.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_loglog_slope({1.0, -2.0}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(fit_loglog_slope({1.0, 1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{42});
  t.row().cell("b").cell(3.14159, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().cell("x");
  EXPECT_THROW(t.cell("y"), std::invalid_argument);
}

TEST(Table, RejectsCellWithoutRow) {
  Table t({"only"});
  EXPECT_THROW(t.cell("x"), std::invalid_argument);
}

TEST(Args, ParsesValuesAndFlags) {
  const char* argv[] = {"prog", "--n=12", "--seed=7", "--verbose", "--name=abc"};
  Args args(5, argv);
  EXPECT_EQ(args.get_int("n", 0), 12);
  EXPECT_EQ(args.get_int("seed", 0), 7);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("name", ""), "abc");
  EXPECT_EQ(args.get_int("missing", 99), 99);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 0.5), 0.5);
}

TEST(Args, RejectsMalformedOptions) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(Args(2, argv), std::invalid_argument);
}

TEST(Args, RejectsNonNumericValues) {
  const char* argv[] = {"prog", "--n=abc"};
  Args args(2, argv);
  EXPECT_THROW((void)args.get_int("n", 0), std::exception);
}

TEST(AssertMacros, RequireThrowsInvalidArgument) {
  EXPECT_THROW(MST_REQUIRE(false, "message"), std::invalid_argument);
  EXPECT_NO_THROW(MST_REQUIRE(true, "message"));
}

TEST(AssertMacros, AssertThrowsLogicError) {
  EXPECT_THROW(MST_ASSERT(false), std::logic_error);
  EXPECT_NO_THROW(MST_ASSERT(true));
}

TEST(TimeConstants, HorizonIsFarFromOverflow) {
  EXPECT_GT(kTimeInfinity, Time{1} << 60);
  EXPECT_LT(kTimeInfinity, std::numeric_limits<Time>::max() / 2);
  EXPECT_LT(kNoTime, 0);
}

}  // namespace
}  // namespace mst
