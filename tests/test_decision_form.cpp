// Decision-form cross-validation through the registry: `max_tasks` must
// agree with the brute-force oracles on randomized platforms, `solve_within`
// witnesses must be feasible schedules completing by the deadline, the
// count-only fast path must match the materialized counts, and the
// seed-carrying options must make randomized policies reproducible.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <variant>
#include <vector>

#include "mst/api/registry.hpp"
#include "mst/baselines/brute_force.hpp"
#include "mst/common/rng.hpp"
#include "mst/platform/generator.hpp"

namespace mst {
namespace {

constexpr std::size_t kCap = 9;  // keeps the exhaustive oracles tractable

api::SolveOptions capped_options() {
  api::SolveOptions options;
  options.cap = kCap;
  return options;
}

/// Deadlines probing every step of the small-k makespan staircase: the
/// optimal makespan of k tasks, one below and one above it.
std::vector<Time> probe_deadlines(const api::Platform& platform, std::size_t k_max) {
  api::SolveOptions fast = capped_options();
  fast.materialize = false;
  std::vector<Time> deadlines{0, 1};
  for (std::size_t k = 1; k <= k_max; ++k) {
    const Time makespan = api::registry().solve(platform, "optimal", k, fast).makespan;
    deadlines.push_back(makespan - 1);
    deadlines.push_back(makespan);
    deadlines.push_back(makespan + 1);
  }
  return deadlines;
}

std::size_t oracle_max_tasks(const api::Platform& platform, Time deadline) {
  if (deadline < 0) return 0;
  if (const auto* chain = std::get_if<Chain>(&platform)) {
    return brute_force_chain_max_tasks(*chain, deadline, kCap);
  }
  if (const auto* fork = std::get_if<Fork>(&platform)) {
    return brute_force_spider_max_tasks(Spider::from_fork(*fork), deadline, kCap);
  }
  return brute_force_spider_max_tasks(std::get<Spider>(platform), deadline, kCap);
}

api::Platform random_platform(api::PlatformKind kind, Rng& rng) {
  const GeneratorParams params{1, 6, PlatformClass::kUniform};
  switch (kind) {
    case api::PlatformKind::kChain: return random_chain(rng, 3, params);
    case api::PlatformKind::kFork: return random_fork(rng, 3, params);
    default: return random_spider(rng, 2, 2, params);
  }
}

// The acceptance check of this PR: on randomized chains, forks and spiders
// the registry's native decision forms match the exhaustive oracles, and
// every nonempty `solve_within` returns a feasible witness within T.
TEST(DecisionForm, MatchesBruteForceOracles) {
  Rng rng(0xD0'07);
  for (api::PlatformKind kind : {api::PlatformKind::kChain, api::PlatformKind::kFork,
                                 api::PlatformKind::kSpider}) {
    for (int trial = 0; trial < 6; ++trial) {
      Rng inst = rng.split();
      const api::Platform platform = random_platform(kind, inst);
      for (Time deadline : probe_deadlines(platform, 4)) {
        SCOPED_TRACE(api::describe(platform) + " T=" + std::to_string(deadline));
        const std::size_t expected = oracle_max_tasks(platform, deadline);
        EXPECT_EQ(api::registry().max_tasks(platform, "optimal", deadline, capped_options()),
                  expected);
        EXPECT_EQ(api::registry().max_tasks(platform, "brute-force", deadline, capped_options()),
                  expected);

        const api::DecisionResult result =
            api::registry().solve_within(platform, "optimal", deadline, capped_options());
        EXPECT_EQ(result.tasks, expected);
        EXPECT_LE(result.makespan, deadline >= 0 ? deadline : 0);
        // Counts that hit the cap may be truncated and are never "optimal".
        EXPECT_EQ(result.optimal, expected < kCap);
        const FeasibilityReport report = api::check_feasibility(result);
        EXPECT_TRUE(report.ok()) << report.summary();
      }
    }
  }
}

// Every registered algorithm of every kind answers the decision form —
// natively or through the makespan-inversion adapter — with a witness that
// passes feasibility checking and respects the deadline.
TEST(DecisionForm, EveryAlgorithmAnswersTheDecisionForm) {
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  const Fork fork{{2, 3}, {1, 4}, {3, 2}};
  const Spider spider{Chain::from_vectors({2, 3}, {3, 5}), Chain::from_vectors({4}, {2})};
  Tree tree;
  const NodeId trunk = tree.add_node(0, {2, 3});
  tree.add_node(trunk, {1, 2});
  tree.add_node(trunk, {2, 4});
  tree.add_node(0, {3, 2});

  const std::vector<api::Platform> platforms{chain, fork, spider, tree};
  for (const api::Platform& platform : platforms) {
    const Time deadline = 40;
    for (const api::AlgorithmInfo& info : api::registry().list(api::kind_of(platform))) {
      SCOPED_TRACE(to_string(info.kind) + "/" + info.name);
      const api::DecisionResult result =
          api::registry().solve_within(platform, info.name, deadline, capped_options());
      EXPECT_EQ(result.algorithm, info.name);
      EXPECT_EQ(result.kind, info.kind);
      EXPECT_EQ(result.deadline, deadline);
      EXPECT_GT(result.tasks, 0u);
      EXPECT_LE(result.makespan, deadline);
      const FeasibilityReport report = api::check_feasibility(result);
      EXPECT_TRUE(report.ok()) << report.summary();
    }
  }
}

// materialize=false is the sweep fast path: same counts, no payload.
TEST(DecisionForm, CountOnlyFastPathMatchesMaterializedCounts) {
  const Spider spider{Chain::from_vectors({2, 3}, {3, 5}), Chain::from_vectors({4}, {2})};
  for (Time deadline : {0, 7, 15, 40, 80}) {
    const api::DecisionResult full =
        api::registry().solve_within(spider, "optimal", deadline, capped_options());
    api::SolveOptions fast = capped_options();
    fast.materialize = false;
    const api::DecisionResult counted =
        api::registry().solve_within(spider, "optimal", deadline, fast);
    EXPECT_EQ(counted.tasks, full.tasks) << "T=" << deadline;
    EXPECT_TRUE(std::holds_alternative<std::monostate>(counted.schedule));
    EXPECT_EQ(counted.tasks, api::registry().max_tasks(spider, "optimal", deadline,
                                                       capped_options()));
  }

  // The makespan form honors the flag too.
  api::SolveOptions fast;
  fast.materialize = false;
  const api::SolveResult bare = api::registry().solve(spider, "optimal", 6, fast);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(bare.schedule));
  EXPECT_EQ(bare.makespan, api::registry().solve(spider, "optimal", 6).makespan);
}

// A count clamped by SolveOptions::cap proves nothing about maximality, so
// it must not be reported as optimal — natively or through the adapter.
TEST(DecisionForm, CapTruncationIsNotReportedOptimal) {
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  api::SolveOptions tiny;
  tiny.cap = 2;
  for (const char* algorithm : {"optimal", "brute-force", "forward-greedy"}) {
    SCOPED_TRACE(algorithm);
    const api::DecisionResult result =
        api::registry().solve_within(chain, algorithm, 1000, tiny);
    EXPECT_EQ(result.tasks, 2u);
    EXPECT_FALSE(result.optimal);
    EXPECT_TRUE(api::check_feasibility(result).ok());
  }
}

// An impossible window yields an empty, payload-free, still-valid result.
TEST(DecisionForm, EmptyWindowIsValid) {
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  for (const char* algorithm : {"optimal", "brute-force", "forward-greedy"}) {
    SCOPED_TRACE(algorithm);
    const api::DecisionResult result = api::registry().solve_within(chain, algorithm, 0);
    EXPECT_EQ(result.tasks, 0u);
    EXPECT_EQ(result.makespan, 0);
    EXPECT_TRUE(std::holds_alternative<std::monostate>(result.schedule));
    EXPECT_TRUE(api::check_feasibility(result).ok());
  }
}

// A nonempty decision result whose makespan overruns its own deadline must
// not pass; an empty one is valid even for negative windows.
TEST(DecisionForm, DeadlineOverrunIsFlagged) {
  api::DecisionResult bogus;
  bogus.deadline = 10;
  bogus.tasks = 2;
  bogus.makespan = 11;
  const FeasibilityReport report = api::check_feasibility(bogus);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("deadline exceeded"), std::string::npos);

  api::DecisionResult empty;
  empty.deadline = -3;
  EXPECT_TRUE(api::check_feasibility(empty).ok());
}

// The online-random policy is registered now that solves carry options;
// the seed makes it reproducible.
TEST(DecisionForm, OnlineRandomIsSeededAndReproducible) {
  Tree tree;
  const NodeId trunk = tree.add_node(0, {2, 3});
  tree.add_node(trunk, {1, 2});
  tree.add_node(0, {3, 2});
  tree.add_node(0, {1, 5});

  ASSERT_NE(api::registry().find(api::PlatformKind::kTree, "online-random"), nullptr);
  api::SolveOptions options;
  options.seed = 5;
  const api::SolveResult a = api::registry().solve(tree, "online-random", 12, options);
  const api::SolveResult b = api::registry().solve(tree, "online-random", 12, options);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_TRUE(api::check_feasibility(a).ok());

  // Any seed yields a feasible dispatch; the decision form goes through the
  // adapter and stays seed-deterministic too.
  options.seed = 6;
  const api::SolveResult c = api::registry().solve(tree, "online-random", 12, options);
  EXPECT_TRUE(api::check_feasibility(c).ok());
  EXPECT_EQ(api::registry().max_tasks(tree, "online-random", 30, options),
            api::registry().max_tasks(tree, "online-random", 30, options));
}

// The throughput fix: degenerate nonempty results report +inf (and fail
// feasibility) instead of silently ranking below everything.
TEST(DecisionForm, DegenerateThroughputIsInfinite) {
  api::SolveResult degenerate;
  degenerate.tasks = 3;
  degenerate.makespan = 0;
  EXPECT_TRUE(std::isinf(degenerate.throughput()));
  EXPECT_FALSE(api::check_feasibility(degenerate).ok());

  api::SolveResult empty;
  EXPECT_EQ(empty.throughput(), 0.0);

  api::DecisionResult window;
  window.deadline = 10;
  window.tasks = 5;
  EXPECT_DOUBLE_EQ(window.throughput(), 0.5);
}

TEST(DecisionForm, UnknownAlgorithmThrows) {
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  EXPECT_THROW((void)api::registry().max_tasks(chain, "simulated-annealing", 10),
               std::invalid_argument);
  EXPECT_THROW((void)api::registry().solve_within(chain, "simulated-annealing", 10),
               std::invalid_argument);
}

}  // namespace
}  // namespace mst
