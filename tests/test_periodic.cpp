// Tests of the exact LP rates and the periodic (bandwidth-centric)
// schedule construction.

#include <gtest/gtest.h>

#include <cmath>

#include "mst/baselines/bounds.hpp"
#include "mst/baselines/periodic.hpp"
#include "mst/common/rng.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/platform/generator.hpp"
#include "mst/schedule/feasibility.hpp"

namespace mst {
namespace {

TEST(LpRates, SingleProcessor) {
  const auto rates = chain_lp_rates(Chain::from_vectors({2}, {5}));
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_EQ(rates[0], Rational(1, 5));  // compute-bound
  const auto link_bound = chain_lp_rates(Chain::from_vectors({5}, {2}));
  EXPECT_EQ(link_bound[0], Rational(1, 5));  // link-bound
}

TEST(LpRates, ForwardGreedyAllocation) {
  // Chain (c=2,w=3),(c=3,w=5): x0 = min(1/3, 1/2) = 1/3, residual link0 =
  // 1/6; x1 = min(1/5, 1/6, 1/3) = 1/6.
  const auto rates = chain_lp_rates(Chain::from_vectors({2, 3}, {3, 5}));
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_EQ(rates[0], Rational(1, 3));
  EXPECT_EQ(rates[1], Rational(1, 6));
}

TEST(LpRates, SaturatedFirstLinkStarvesTheTail) {
  // (c=2,w=2): processor 0 takes the whole link-0 capacity.
  const auto rates = chain_lp_rates(Chain::from_vectors({2, 1}, {2, 1}));
  EXPECT_EQ(rates[0], Rational(1, 2));
  EXPECT_EQ(rates[1], Rational(0));
}

TEST(LpRates, ZeroLatencyLinksAreUnbounded) {
  const auto rates = chain_lp_rates(Chain::from_vectors({0, 0}, {4, 4}));
  EXPECT_EQ(rates[0], Rational(1, 4));
  EXPECT_EQ(rates[1], Rational(1, 4));
}

TEST(LpRates, SumMatchesDoubleRecursionEverywhere) {
  Rng rng(314);
  GeneratorParams params{1, 9, PlatformClass::kUniform};
  for (int trial = 0; trial < 30; ++trial) {
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 7)), params);
    const auto rates = chain_lp_rates(chain);
    double total = 0;
    for (const Rational& r : rates) total += r.to_double();
    EXPECT_NEAR(total, chain_steady_state_rate(chain), 1e-9) << chain.describe();
  }
}

TEST(LpRates, RatesSatisfyAllConstraintsExactly) {
  Rng rng(315);
  GeneratorParams params{1, 9, PlatformClass::kCorrelated};
  for (int trial = 0; trial < 20; ++trial) {
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 6)), params);
    const auto rates = chain_lp_rates(chain);
    for (std::size_t q = 0; q < rates.size(); ++q) {
      EXPECT_LE(rates[q], Rational(1, chain.work(q))) << chain.describe();
    }
    for (std::size_t k = 0; k < chain.size(); ++k) {
      if (chain.comm(k) == 0) continue;
      Rational suffix(0);
      for (std::size_t j = k; j < rates.size(); ++j) suffix = suffix + rates[j];
      EXPECT_LE(suffix, Rational(1, chain.comm(k))) << chain.describe() << " link " << k;
    }
  }
}

TEST(Periodic, PatternCountsMatchRates) {
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  const PeriodicPattern pattern = chain_periodic_pattern(chain);
  // Rates 1/3 and 1/6 -> hyperperiod 6, counts {2, 1}.
  EXPECT_EQ(pattern.hyperperiod, 6);
  ASSERT_EQ(pattern.counts.size(), 2u);
  EXPECT_EQ(pattern.counts[0], 2u);
  EXPECT_EQ(pattern.counts[1], 1u);
  EXPECT_EQ(pattern.tasks_per_period(), 3u);
  EXPECT_NEAR(pattern.rate(), 0.5, 1e-12);
}

TEST(Periodic, BlockContainsExactlyTheCounts) {
  Rng rng(316);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 15; ++trial) {
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 5)), params);
    const PeriodicPattern pattern = chain_periodic_pattern(chain);
    std::vector<std::size_t> seen(chain.size(), 0);
    for (std::size_t q : pattern.block) {
      ASSERT_LT(q, chain.size());
      ++seen[q];
    }
    EXPECT_EQ(seen, pattern.counts) << chain.describe();
  }
}

TEST(Periodic, MaterializedScheduleIsFeasible) {
  Rng rng(317);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 10; ++trial) {
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 5)), params);
    const PeriodicPattern pattern = chain_periodic_pattern(chain);
    const ChainSchedule s = periodic_chain_schedule(chain, pattern, 3);
    EXPECT_EQ(s.num_tasks(), pattern.tasks_per_period() * 3);
    EXPECT_TRUE(check_feasibility(s).ok()) << chain.describe();
  }
}

TEST(Periodic, ThroughputConvergesToLpRate) {
  Rng rng(318);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 8; ++trial) {
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(2, 5)), params);
    const PeriodicPattern pattern = chain_periodic_pattern(chain);
    const std::size_t reps = 60;
    const ChainSchedule s = periodic_chain_schedule(chain, pattern, reps);
    const double tp =
        static_cast<double>(s.num_tasks()) / static_cast<double>(s.makespan());
    EXPECT_GT(tp, 0.85 * pattern.rate()) << chain.describe();
    EXPECT_LE(tp, pattern.rate() + 1e-9) << chain.describe();
  }
}

TEST(Periodic, NeverBeatsTheOptimalSchedule) {
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  const PeriodicPattern pattern = chain_periodic_pattern(chain);
  for (std::size_t reps : {1u, 4u, 16u}) {
    const ChainSchedule periodic = periodic_chain_schedule(chain, pattern, reps);
    EXPECT_GE(periodic.makespan(),
              ChainScheduler::makespan(chain, periodic.num_tasks()));
  }
}

TEST(Periodic, RejectsZeroRepetitions) {
  const Chain chain = Chain::from_vectors({1}, {1});
  const PeriodicPattern pattern = chain_periodic_pattern(chain);
  EXPECT_THROW(periodic_chain_schedule(chain, pattern, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mst
