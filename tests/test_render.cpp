// Tests of the Gantt / SVG / JSON renderers.

#include <gtest/gtest.h>

#include "mst/core/chain_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/schedule/gantt.hpp"
#include "mst/schedule/json.hpp"
#include "mst/schedule/svg.hpp"

namespace mst {
namespace {

Chain fig2_chain() { return Chain::from_vectors({2, 3}, {3, 5}); }

TEST(Gantt, RendersFig2Exactly) {
  const ChainSchedule s = ChainScheduler::schedule(fig2_chain(), 5);
  const std::string expected =
      "link 0 |00112233.44...|\n"
      "link 1 |......222.....|\n"
      "proc 0 |..000111333444|\n"
      "proc 1 |.........22222|\n";
  EXPECT_EQ(render_gantt(s), expected);
}

TEST(Gantt, TimeScaleCompressesColumns) {
  const ChainSchedule s = ChainScheduler::schedule(fig2_chain(), 5);
  const std::string compressed = render_gantt(s, 2);
  // 14 time units at scale 2 -> 7 cells between the pipes.
  const auto first_line = compressed.substr(0, compressed.find('\n'));
  const auto open = first_line.find('|');
  const auto close = first_line.rfind('|');
  EXPECT_EQ(close - open - 1, 7u);
  EXPECT_THROW(render_gantt(s, 0), std::invalid_argument);
}

TEST(Gantt, SpiderRenderingHasMasterRow) {
  const Spider spider{fig2_chain(), Chain::from_vectors({4}, {2})};
  const SpiderSchedule s = SpiderScheduler::schedule(spider, 4);
  const std::string out = render_gantt(s);
  EXPECT_NE(out.find("master port"), std::string::npos);
  EXPECT_NE(out.find("leg 0 link 0"), std::string::npos);
  EXPECT_NE(out.find("leg 1 proc 0"), std::string::npos);
}

TEST(Svg, ChainContainsOneRectPerBusyInterval) {
  const ChainSchedule s = ChainScheduler::schedule(fig2_chain(), 5);
  const std::string svg = render_svg(s);
  // Fig 2: 5 executions + 6 communications (5 on link 0, 1 on link 1),
  // plus one background rect.
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_EQ(rects, 1u + 5u + 6u);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, SpiderRendersWithoutLabelsWhenDisabled) {
  const Spider spider{fig2_chain(), Chain::from_vectors({4}, {2})};
  const SpiderSchedule s = SpiderScheduler::schedule(spider, 3);
  SvgOptions opt;
  opt.show_labels = false;
  const std::string svg = render_svg(s, opt);
  EXPECT_NE(svg.find("master port"), std::string::npos);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
}

TEST(Json, PlatformsSerialize) {
  EXPECT_EQ(to_json(Chain::from_vectors({2}, {3})),
            "{\"kind\":\"chain\",\"procs\":[{\"comm\":2,\"work\":3}]}");
  EXPECT_EQ(to_json(Fork({Processor{1, 2}})),
            "{\"kind\":\"fork\",\"slaves\":[{\"comm\":1,\"work\":2}]}");
  const Spider spider{Chain::from_vectors({2}, {3}), Chain::from_vectors({4}, {5})};
  EXPECT_EQ(to_json(spider),
            "{\"kind\":\"spider\",\"legs\":[[{\"comm\":2,\"work\":3}],"
            "[{\"comm\":4,\"work\":5}]]}");
}

TEST(Json, ChainScheduleEmbedsTasks) {
  ChainSchedule s{Chain::from_vectors({2}, {3}), {ChainTask{0, 2, {0}}}};
  EXPECT_EQ(to_json(s),
            "{\"platform\":{\"kind\":\"chain\",\"procs\":[{\"comm\":2,\"work\":3}]},"
            "\"makespan\":5,\"tasks\":[{\"proc\":0,\"start\":2,\"emissions\":[0]}]}");
}

TEST(Json, SpiderScheduleEmbedsTasks) {
  const Spider spider{Chain::from_vectors({2}, {3})};
  SpiderSchedule s{spider, {SpiderTask{0, 0, 2, {0}}}};
  const std::string json = to_json(s);
  EXPECT_NE(json.find("\"leg\":0"), std::string::npos);
  EXPECT_NE(json.find("\"makespan\":5"), std::string::npos);
}

TEST(Json, ForkScheduleEmbedsTasks) {
  const Fork fork({Processor{2, 3}});
  ForkSchedule s{fork, {ForkTask{0, 0, 2}}};
  const std::string json = to_json(s);
  EXPECT_NE(json.find("\"slave\":0"), std::string::npos);
  EXPECT_NE(json.find("\"emission\":0"), std::string::npos);
}

}  // namespace
}  // namespace mst
