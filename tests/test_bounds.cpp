// Tests of the steady-state (bandwidth-centric) rates and makespan lower
// bounds.

#include <gtest/gtest.h>

#include "mst/baselines/bounds.hpp"
#include "mst/common/rng.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/platform/generator.hpp"

namespace mst {
namespace {

TEST(Bounds, SingleProcessorRate) {
  // Rate = min(1/c, 1/w).
  EXPECT_DOUBLE_EQ(chain_steady_state_rate(Chain::from_vectors({2}, {5})), 0.2);
  EXPECT_DOUBLE_EQ(chain_steady_state_rate(Chain::from_vectors({5}, {2})), 0.2);
  EXPECT_DOUBLE_EQ(chain_steady_state_rate(Chain::from_vectors({4}, {4})), 0.25);
}

TEST(Bounds, ChainRecursionNestsCorrectly) {
  // lambda_1 = min(1/c1, 1/w1 + min(1/c2, 1/w2)).
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  const double inner = std::min(1.0 / 3.0, 1.0 / 5.0);
  const double expected = std::min(1.0 / 2.0, 1.0 / 3.0 + inner);
  EXPECT_DOUBLE_EQ(chain_steady_state_rate(chain), expected);
}

TEST(Bounds, FirstLinkCapsTheChainRate) {
  // However fast the tail, the first link is a hard ceiling.
  const Chain chain = Chain::from_vectors({4, 1, 1, 1}, {1, 1, 1, 1});
  EXPECT_DOUBLE_EQ(chain_steady_state_rate(chain), 0.25);
}

TEST(Bounds, ZeroLatencyLinkIsTransparent) {
  const Chain chain = Chain::from_vectors({0}, {2});
  EXPECT_DOUBLE_EQ(chain_steady_state_rate(chain), 0.5);
}

TEST(Bounds, SpiderRateFillsCheapLegsFirst) {
  // Leg A: c=1, w=1 (rate 1, cost 1/task); leg B: c=2, w=2.  Port budget 1
  // is exhausted by leg A alone.
  const Spider greedy_case{Chain::from_vectors({1}, {1}), Chain::from_vectors({2}, {2})};
  EXPECT_DOUBLE_EQ(spider_steady_state_rate(greedy_case), 1.0);
  // Slower first leg leaves port budget for the second.
  const Spider shared{Chain::from_vectors({1}, {4}), Chain::from_vectors({2}, {4})};
  // Leg A: rate 1/4 using budget 1/4; leg B: rate 1/4 using budget 1/2;
  // total 1/2 of port used -> both fully served.
  EXPECT_DOUBLE_EQ(spider_steady_state_rate(shared), 0.5);
}

TEST(Bounds, TreeRateMatchesChainAndSpiderSpecialCases) {
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  EXPECT_DOUBLE_EQ(tree_steady_state_rate(tree_from_chain(chain)),
                   chain_steady_state_rate(chain));
  const Spider spider{Chain::from_vectors({1}, {4}), Chain::from_vectors({2}, {4})};
  EXPECT_DOUBLE_EQ(tree_steady_state_rate(tree_from_spider(spider)),
                   spider_steady_state_rate(spider));
}

TEST(Bounds, TreeRateCountsInteriorComputation) {
  // A relay node that also computes adds its own 1/w.
  Tree tree;
  const NodeId mid = tree.add_node(0, {1, 2});
  tree.add_node(mid, {1, 2});
  // Rate at mid: 1/2 + min(child rate 1/2, link 1/1, budget 1/1) = 1.
  // Root: min(1, budget 1/c=1) = 1.
  EXPECT_DOUBLE_EQ(tree_steady_state_rate(tree), 1.0);
}

TEST(Bounds, LowerBoundsAreSafe) {
  Rng rng(77);
  GeneratorParams params{1, 9, PlatformClass::kUniform};
  for (int trial = 0; trial < 25; ++trial) {
    Rng inst = rng.split();
    const auto p = static_cast<std::size_t>(rng.uniform(1, 5));
    const auto n = static_cast<std::size_t>(rng.uniform(1, 12));
    const Chain chain = random_chain(inst, p, params);
    EXPECT_LE(chain_makespan_lower_bound(chain, n), ChainScheduler::makespan(chain, n))
        << chain.describe() << " n=" << n;
  }
  for (int trial = 0; trial < 15; ++trial) {
    Rng inst = rng.split();
    const auto legs = static_cast<std::size_t>(rng.uniform(1, 4));
    const auto n = static_cast<std::size_t>(rng.uniform(1, 10));
    const Spider spider = random_spider(inst, legs, 3, params);
    EXPECT_LE(spider_makespan_lower_bound(spider, n), SpiderScheduler::makespan(spider, n))
        << spider.describe() << " n=" << n;
  }
}

TEST(Bounds, OptimalThroughputApproachesSteadyStateRate) {
  // As n grows, n / makespan(n) must converge to (and never exceed) the
  // steady-state rate.
  const Chain chain = Chain::from_vectors({2, 1, 3}, {4, 6, 2});
  const double rate = chain_steady_state_rate(chain);
  double prev_gap = 1e9;
  for (std::size_t n : {8u, 32u, 128u, 512u}) {
    const double tp =
        static_cast<double>(n) / static_cast<double>(ChainScheduler::makespan(chain, n));
    EXPECT_LE(tp, rate + 1e-9) << "n=" << n;
    const double gap = rate - tp;
    EXPECT_LE(gap, prev_gap + 1e-9) << "n=" << n;
    prev_gap = gap;
  }
  // At n = 512 the gap is tiny.
  const double tp512 =
      512.0 / static_cast<double>(ChainScheduler::makespan(chain, 512));
  EXPECT_NEAR(tp512, rate, rate * 0.05);
}

TEST(Bounds, LowerBoundSingleTaskIsPathPlusWork) {
  const Chain chain = Chain::from_vectors({3, 1, 1}, {10, 6, 2});
  // Best single task: q2 -> 5 + 2 = 7.
  EXPECT_EQ(chain_makespan_lower_bound(chain, 1), 7);
  EXPECT_EQ(ChainScheduler::makespan(chain, 1), 7);  // tight here
}

TEST(Bounds, RejectsZeroTasks) {
  EXPECT_THROW(chain_makespan_lower_bound(Chain::from_vectors({1}, {1}), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace mst
