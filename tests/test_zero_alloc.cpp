// Dynamic half of the zero-alloc contract for the simulator substrate: the
// statically-checked mstlint zero-alloc regions in engine.cpp/platform_sim.cpp
// ban allocating constructs at the token level; these tests pin the actual
// runtime behaviour with the shared global-allocation probe.
//
// Two claims:
//  1. the event engine's steady state — scheduling and firing events on a
//     warm heap — performs zero allocations;
//  2. the streaming driver's whole-run allocation *count* is independent
//     of the task count: the per-task cost is zero, everything that does
//     allocate is per-run or per-node setup.

#include <gtest/gtest.h>

#include <cstddef>

#include "mst/common/rng.hpp"
#include "mst/platform/generator.hpp"
#include "mst/sim/engine.hpp"
#include "mst/sim/online.hpp"
#include "mst/sim/streaming.hpp"
#include "mst/workload/workload.hpp"
#include "support/alloc_probe.hpp"

namespace mst {
namespace {

/// Self-rescheduling event: each firing schedules the next until the
/// countdown ends.  Two machine words — fits the inline callback storage.
struct Ticker {
  sim::Engine* engine;
  int remaining;
  void operator()() const {
    if (remaining > 0) engine->after(1, Ticker{engine, remaining - 1});
  }
};

TEST(EngineZeroAlloc, SteadyStateEventLoopIsAllocationFree) {
  sim::Engine engine;
  engine.reserve(8);
  // Warm-up: sizes the heap vector and touches every code path once.
  engine.at(0, Ticker{&engine, 100});
  engine.run();

  alloc_probe::Scope probe;
  // Four interleaved tickers exercise heap sift-up/down, not just a
  // single-element queue.
  for (int lane = 0; lane < 4; ++lane) {
    engine.at(engine.now() + lane, Ticker{&engine, 2500});
  }
  engine.run();
  EXPECT_EQ(probe.count(), 0);
  EXPECT_GE(engine.events_processed(), 10000u);
}

TEST(EngineZeroAlloc, OversizedCaptureWouldNotCompile) {
  // Compile-time contract documented here: InplaceCallback rejects
  // captures beyond kStorage via static_assert, so nothing silently heap
  // allocates per event.  This test just pins the storage constant the
  // simulator's lambdas were sized against.
  static_assert(sim::InplaceCallback::kStorage >= 7 * sizeof(void*));
  SUCCEED();
}

/// Total allocations of one full streaming run (policy and workload are
/// built outside the probed window; the run itself is driver + simulator +
/// metrics).
long stream_allocations(std::size_t n) {
  Rng rng(99);
  const Tree tree = random_tree(rng, 12, {1, 9, PlatformClass::kUniform});
  const auto policy = sim::make_stream_policy(tree, sim::OnlinePolicy::kRoundRobin);
  const Workload workload = Workload::identical(n);

  alloc_probe::Scope probe;
  const sim::StreamResult result = sim::simulate_stream(tree, workload, *policy);
  EXPECT_EQ(result.sim.tasks.size(), n);
  return probe.count();
}

TEST(StreamingZeroAlloc, RunAllocationCountIndependentOfTaskCount) {
  const long small = stream_allocations(256);
  const long large = stream_allocations(2048);
  // Setup (result arrays, route cache, event heap, metrics vector) may
  // allocate; the steady-state loop may not — so 8x the tasks must not add
  // a single extra allocation.
  EXPECT_GT(small, 0);
  EXPECT_EQ(small, large);
}

}  // namespace
}  // namespace mst
