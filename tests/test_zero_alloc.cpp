// Dynamic half of the zero-alloc contract for the simulator substrate: the
// statically-checked mstlint zero-alloc regions in engine.cpp/platform_sim.cpp
// ban allocating constructs at the token level; these tests pin the actual
// runtime behaviour with the shared global-allocation probe.
//
// Two claims:
//  1. the event engine's steady state — scheduling and firing events on a
//     warm heap — performs zero allocations;
//  2. the streaming driver's whole-run allocation *count* is independent
//     of the task count: the per-task cost is zero, everything that does
//     allocate is per-run or per-node setup.

#include <gtest/gtest.h>

#include <cstddef>
#include <utility>

#include "mst/api/registry.hpp"
#include "mst/api/solve_scratch.hpp"
#include "mst/common/rng.hpp"
#include "mst/obs/metrics.hpp"
#include "mst/obs/observation.hpp"
#include "mst/platform/generator.hpp"
#include "mst/sim/engine.hpp"
#include "mst/sim/online.hpp"
#include "mst/sim/streaming.hpp"
#include "mst/workload/workload.hpp"
#include "support/alloc_probe.hpp"

namespace mst {
namespace {

/// Self-rescheduling event: each firing schedules the next until the
/// countdown ends.  Two machine words — fits the inline callback storage.
struct Ticker {
  sim::Engine* engine;
  int remaining;
  void operator()() const {
    if (remaining > 0) engine->after(1, Ticker{engine, remaining - 1});
  }
};

TEST(EngineZeroAlloc, SteadyStateEventLoopIsAllocationFree) {
  sim::Engine engine;
  engine.reserve(8);
  // Warm-up: sizes the heap vector and touches every code path once.
  engine.at(0, Ticker{&engine, 100});
  engine.run();

  alloc_probe::Scope probe;
  // Four interleaved tickers exercise heap sift-up/down, not just a
  // single-element queue.
  for (int lane = 0; lane < 4; ++lane) {
    engine.at(engine.now() + lane, Ticker{&engine, 2500});
  }
  engine.run();
  EXPECT_EQ(probe.count(), 0);
  EXPECT_GE(engine.events_processed(), 10000u);
}

/// Ticker that counts every firing through a metric handle — the
/// instrumented twin of the test above.  The handle is one pointer, so the
/// capture still fits the inline storage.
struct CountingTicker {
  sim::Engine* engine;
  int remaining;
  mutable obs::Counter fired;  // handle updates are non-const (atomic RMW)
  void operator()() const {
    fired.increment();
    if (remaining > 0) engine->after(1, CountingTicker{engine, remaining - 1, fired});
  }
};

TEST(EngineZeroAlloc, InstrumentedEventLoopIsAllocationFree) {
  // Both halves of the observability cost model: a disabled handle (the
  // uninstrumented default) and an enabled, preregistered one — neither may
  // allocate in the steady state.
  obs::MetricsRegistry registry;
  for (const bool enabled : {false, true}) {
    obs::Counter fired = enabled ? registry.counter("engine.fired") : obs::Counter{};
    EXPECT_EQ(fired.enabled(), enabled);
    sim::Engine engine;
    engine.reserve(8);
    engine.at(0, CountingTicker{&engine, 100, fired});
    engine.run();

    alloc_probe::Scope probe;
    for (int lane = 0; lane < 4; ++lane) {
      engine.at(engine.now() + lane, CountingTicker{&engine, 2500, fired});
    }
    engine.run();
    EXPECT_EQ(probe.count(), 0) << (enabled ? "enabled" : "disabled");
  }
  const std::vector<obs::MetricSample> samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_GE(samples[0].value, 10000);
}

TEST(EngineZeroAlloc, OversizedCaptureWouldNotCompile) {
  // Compile-time contract documented here: InplaceCallback rejects
  // captures beyond kStorage via static_assert, so nothing silently heap
  // allocates per event.  This test just pins the storage constant the
  // simulator's lambdas were sized against.
  static_assert(sim::InplaceCallback::kStorage >= 7 * sizeof(void*));
  SUCCEED();
}

/// Total allocations of one full streaming run (policy and workload are
/// built outside the probed window; the run itself is driver + simulator +
/// metrics).
long stream_allocations(std::size_t n, obs::MetricsRegistry* metrics = nullptr) {
  Rng rng(99);
  const Tree tree = random_tree(rng, 12, {1, 9, PlatformClass::kUniform});
  const auto policy = sim::make_stream_policy(tree, sim::OnlinePolicy::kRoundRobin);
  const Workload workload = Workload::identical(n);

  alloc_probe::Scope probe;
  const sim::StreamResult result =
      sim::simulate_stream(tree, workload, *policy, obs::Observation{metrics, nullptr});
  EXPECT_EQ(result.sim.tasks.size(), n);
  return probe.count();
}

TEST(StreamingZeroAlloc, RunAllocationCountIndependentOfTaskCount) {
  const long small = stream_allocations(256);
  const long large = stream_allocations(2048);
  // Setup (result arrays, route cache, event heap, metrics vector) may
  // allocate; the steady-state loop may not — so 8x the tasks must not add
  // a single extra allocation.
  EXPECT_GT(small, 0);
  EXPECT_EQ(small, large);
}

TEST(StreamingZeroAlloc, MetricsAttachedRunAllocatesNothingExtra) {
  // The observability contract end to end: with a metrics registry attached
  // the driver registers into fixed slots and updates atomics, so the run's
  // allocation count neither grows with the task count nor exceeds the
  // uninstrumented run's.
  obs::MetricsRegistry registry;
  const long small = stream_allocations(256, &registry);
  const long large = stream_allocations(2048, &registry);
  EXPECT_GT(small, 0);
  EXPECT_EQ(small, large);
  EXPECT_EQ(small, stream_allocations(256));

  const std::vector<obs::MetricSample> samples = registry.snapshot();
  EXPECT_FALSE(samples.empty());
  for (const obs::MetricSample& sample : samples) {
    if (sample.name == "stream.arrivals") {
      EXPECT_EQ(sample.value, 256 + 2048);
    }
  }
}

/// Allocations of one *materialized* solve on a warm `api::SolveScratch`:
/// two warm-up solves size every pool (schedule payloads included — each is
/// recycled back into the scratch, the consumer half of the contract), then
/// the third solve runs under the probe.
long solve_allocations(const api::Platform& platform, const char* algorithm, std::size_t n) {
  const api::Registry& registry = api::registry();
  api::SolveScratch scratch;
  api::SolveOptions options;
  options.materialize = true;
  options.scratch = &scratch;
  for (int warm = 0; warm < 2; ++warm) {
    scratch.recycle(registry.solve(platform, algorithm, n, options));
  }

  alloc_probe::Scope probe;
  api::SolveResult result = registry.solve(platform, algorithm, n, options);
  const long count = probe.count();
  EXPECT_EQ(result.tasks, n);
  scratch.recycle(std::move(result));
  return count;
}

TEST(SolveZeroAlloc, MaterializedOptimalSolvesAreAllocationFree) {
  // The tentpole claim: with a warm scratch, a full schedule-producing
  // solve on each closed-form platform allocates nothing — the plan is
  // rebuilt in place inside recycled pool capacity.
  Rng rng(7);
  const GeneratorParams params{1, 10, PlatformClass::kUniform};
  const api::Platform chain(random_chain(rng, 12, params));
  const api::Platform fork(random_fork(rng, 12, params));
  const api::Platform spider(random_spider(rng, 6, 3, params));
  EXPECT_EQ(solve_allocations(chain, "optimal", 300), 0) << "chain";
  EXPECT_EQ(solve_allocations(fork, "optimal", 300), 0) << "fork";
  EXPECT_EQ(solve_allocations(spider, "optimal", 300), 0) << "spider";
}

TEST(SolveZeroAlloc, ScratchSolvesMatchPlainSolvesExactly) {
  // The scratch paths are alternative *materializations*, not alternative
  // algorithms: every field of the result — schedule payload included —
  // must be bit-identical to the scratch-free solve.
  const api::Registry& registry = api::registry();
  Rng rng(21);
  const GeneratorParams params{1, 10, PlatformClass::kUniform};
  const api::Platform platforms[] = {
      api::Platform(random_chain(rng, 9, params)),
      api::Platform(random_fork(rng, 9, params)),
      api::Platform(random_spider(rng, 5, 4, params)),
  };
  api::SolveScratch scratch;
  for (const api::Platform& platform : platforms) {
    for (const std::size_t n : {1u, 17u, 256u}) {
      api::SolveOptions plain_options;
      plain_options.materialize = true;
      const api::SolveResult plain = registry.solve(platform, "optimal", n, plain_options);

      api::SolveOptions scratch_options = plain_options;
      scratch_options.scratch = &scratch;
      api::SolveResult pooled = registry.solve(platform, "optimal", n, scratch_options);

      EXPECT_EQ(pooled.makespan, plain.makespan);
      EXPECT_EQ(pooled.lower_bound, plain.lower_bound);
      EXPECT_EQ(pooled.tasks, plain.tasks);
      EXPECT_EQ(pooled.schedule == plain.schedule, true);
      scratch.recycle(std::move(pooled));
    }
  }
}

TEST(SolveZeroAlloc, TreeHeuristicAllocationCountIndependentOfTaskCount) {
  // Tree-shaped platforms keep per-solve state (`TreeAsapState` caches the
  // path table of one tree, so it cannot live in the platform-agnostic
  // scratch); the contract is the streaming one — the allocation count is
  // per-*tree*, never per-task.
  Rng rng(33);
  const api::Platform tree(random_tree(rng, 10, {1, 9, PlatformClass::kUniform}));
  for (const char* algorithm : {"spider-cover", "forward-greedy"}) {
    const long small = solve_allocations(tree, algorithm, 256);
    const long large = solve_allocations(tree, algorithm, 2048);
    EXPECT_EQ(small, large) << algorithm;
  }
  // Local search swaps are O(n^2) re-evaluations — same contract, smaller n.
  const long small = solve_allocations(tree, "local-search", 24);
  const long large = solve_allocations(tree, "local-search", 48);
  EXPECT_EQ(small, large) << "local-search";
}

}  // namespace
}  // namespace mst
