// Dynamic half of the zero-alloc contract for the simulator substrate: the
// statically-checked mstlint zero-alloc regions in engine.cpp/platform_sim.cpp
// ban allocating constructs at the token level; these tests pin the actual
// runtime behaviour with the shared global-allocation probe.
//
// Two claims:
//  1. the event engine's steady state — scheduling and firing events on a
//     warm heap — performs zero allocations;
//  2. the streaming driver's whole-run allocation *count* is independent
//     of the task count: the per-task cost is zero, everything that does
//     allocate is per-run or per-node setup.

#include <gtest/gtest.h>

#include <cstddef>

#include "mst/common/rng.hpp"
#include "mst/obs/metrics.hpp"
#include "mst/obs/observation.hpp"
#include "mst/platform/generator.hpp"
#include "mst/sim/engine.hpp"
#include "mst/sim/online.hpp"
#include "mst/sim/streaming.hpp"
#include "mst/workload/workload.hpp"
#include "support/alloc_probe.hpp"

namespace mst {
namespace {

/// Self-rescheduling event: each firing schedules the next until the
/// countdown ends.  Two machine words — fits the inline callback storage.
struct Ticker {
  sim::Engine* engine;
  int remaining;
  void operator()() const {
    if (remaining > 0) engine->after(1, Ticker{engine, remaining - 1});
  }
};

TEST(EngineZeroAlloc, SteadyStateEventLoopIsAllocationFree) {
  sim::Engine engine;
  engine.reserve(8);
  // Warm-up: sizes the heap vector and touches every code path once.
  engine.at(0, Ticker{&engine, 100});
  engine.run();

  alloc_probe::Scope probe;
  // Four interleaved tickers exercise heap sift-up/down, not just a
  // single-element queue.
  for (int lane = 0; lane < 4; ++lane) {
    engine.at(engine.now() + lane, Ticker{&engine, 2500});
  }
  engine.run();
  EXPECT_EQ(probe.count(), 0);
  EXPECT_GE(engine.events_processed(), 10000u);
}

/// Ticker that counts every firing through a metric handle — the
/// instrumented twin of the test above.  The handle is one pointer, so the
/// capture still fits the inline storage.
struct CountingTicker {
  sim::Engine* engine;
  int remaining;
  mutable obs::Counter fired;  // handle updates are non-const (atomic RMW)
  void operator()() const {
    fired.increment();
    if (remaining > 0) engine->after(1, CountingTicker{engine, remaining - 1, fired});
  }
};

TEST(EngineZeroAlloc, InstrumentedEventLoopIsAllocationFree) {
  // Both halves of the observability cost model: a disabled handle (the
  // uninstrumented default) and an enabled, preregistered one — neither may
  // allocate in the steady state.
  obs::MetricsRegistry registry;
  for (const bool enabled : {false, true}) {
    obs::Counter fired = enabled ? registry.counter("engine.fired") : obs::Counter{};
    EXPECT_EQ(fired.enabled(), enabled);
    sim::Engine engine;
    engine.reserve(8);
    engine.at(0, CountingTicker{&engine, 100, fired});
    engine.run();

    alloc_probe::Scope probe;
    for (int lane = 0; lane < 4; ++lane) {
      engine.at(engine.now() + lane, CountingTicker{&engine, 2500, fired});
    }
    engine.run();
    EXPECT_EQ(probe.count(), 0) << (enabled ? "enabled" : "disabled");
  }
  const std::vector<obs::MetricSample> samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_GE(samples[0].value, 10000);
}

TEST(EngineZeroAlloc, OversizedCaptureWouldNotCompile) {
  // Compile-time contract documented here: InplaceCallback rejects
  // captures beyond kStorage via static_assert, so nothing silently heap
  // allocates per event.  This test just pins the storage constant the
  // simulator's lambdas were sized against.
  static_assert(sim::InplaceCallback::kStorage >= 7 * sizeof(void*));
  SUCCEED();
}

/// Total allocations of one full streaming run (policy and workload are
/// built outside the probed window; the run itself is driver + simulator +
/// metrics).
long stream_allocations(std::size_t n, obs::MetricsRegistry* metrics = nullptr) {
  Rng rng(99);
  const Tree tree = random_tree(rng, 12, {1, 9, PlatformClass::kUniform});
  const auto policy = sim::make_stream_policy(tree, sim::OnlinePolicy::kRoundRobin);
  const Workload workload = Workload::identical(n);

  alloc_probe::Scope probe;
  const sim::StreamResult result =
      sim::simulate_stream(tree, workload, *policy, obs::Observation{metrics, nullptr});
  EXPECT_EQ(result.sim.tasks.size(), n);
  return probe.count();
}

TEST(StreamingZeroAlloc, RunAllocationCountIndependentOfTaskCount) {
  const long small = stream_allocations(256);
  const long large = stream_allocations(2048);
  // Setup (result arrays, route cache, event heap, metrics vector) may
  // allocate; the steady-state loop may not — so 8x the tasks must not add
  // a single extra allocation.
  EXPECT_GT(small, 0);
  EXPECT_EQ(small, large);
}

TEST(StreamingZeroAlloc, MetricsAttachedRunAllocatesNothingExtra) {
  // The observability contract end to end: with a metrics registry attached
  // the driver registers into fixed slots and updates atomics, so the run's
  // allocation count neither grows with the task count nor exceeds the
  // uninstrumented run's.
  obs::MetricsRegistry registry;
  const long small = stream_allocations(256, &registry);
  const long large = stream_allocations(2048, &registry);
  EXPECT_GT(small, 0);
  EXPECT_EQ(small, large);
  EXPECT_EQ(small, stream_allocations(256));

  const std::vector<obs::MetricSample> samples = registry.snapshot();
  EXPECT_FALSE(samples.empty());
  for (const obs::MetricSample& sample : samples) {
    if (sample.name == "stream.arrivals") EXPECT_EQ(sample.value, 256 + 2048);
  }
}

}  // namespace
}  // namespace mst
