// Tests of the exact rational arithmetic backing the steady-state LP.

#include <gtest/gtest.h>

#include "mst/common/rational.hpp"

namespace mst {
namespace {

TEST(Rational, NormalizesOnConstruction) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
  const Rational neg(3, -6);
  EXPECT_EQ(neg.num(), -1);
  EXPECT_EQ(neg.den(), 2);
  EXPECT_EQ(Rational(0, 7), Rational(0));
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, ImplicitIntegerConversion) {
  const Rational r = 5;
  EXPECT_EQ(r.num(), 5);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
  EXPECT_THROW(Rational(1, 2) / Rational(0), std::invalid_argument);
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GE(Rational(1, 2), Rational(2, 4));
  EXPECT_EQ(Rational::min(Rational(1, 3), Rational(1, 2)), Rational(1, 3));
  EXPECT_EQ(Rational::max(Rational(1, 3), Rational(1, 2)), Rational(1, 2));
}

TEST(Rational, Reciprocal) {
  EXPECT_EQ(Rational(3, 7).reciprocal(), Rational(7, 3));
  EXPECT_EQ(Rational(-2).reciprocal(), Rational(-1, 2));
  EXPECT_THROW((void)Rational(0).reciprocal(), std::invalid_argument);
}

TEST(Rational, ToStringAndDouble) {
  EXPECT_EQ(Rational(3, 4).to_string(), "3/4");
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
  EXPECT_TRUE(Rational(0).is_zero());
  EXPECT_FALSE(Rational(1, 9).is_zero());
}

TEST(Rational, GcdLcmHelpers) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(7, 7), 7);
  EXPECT_THROW(lcm64(0, 3), std::invalid_argument);
}

TEST(Rational, OverflowIsDetectedNotWrapped) {
  const std::int64_t big = (std::int64_t{1} << 62);
  EXPECT_THROW(Rational(big, 3) * Rational(big, 5), std::invalid_argument);
}

TEST(Rational, CrossReductionKeepsIntermediatesSmall) {
  // Would overflow with naive a.num*b.num if not cross-reduced.
  const std::int64_t big = (std::int64_t{1} << 40);
  const Rational a(big, 3);
  const Rational b(9, big);
  EXPECT_EQ(a * b, Rational(3));
}

TEST(Rational, SumOfSeriesIsExact) {
  // 1/1 + 1/2 + ... + 1/10 == 7381/2520.
  Rational sum(0);
  for (std::int64_t k = 1; k <= 10; ++k) sum = sum + Rational(1, k);
  EXPECT_EQ(sum, Rational(7381, 2520));
}

}  // namespace
}  // namespace mst
