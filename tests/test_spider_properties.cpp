// Property tests of the spider algorithm over seeded random instances:
// feasibility, optimality against exhaustive search (Theorem 3), duality
// and replay agreement.

#include <gtest/gtest.h>

#include <tuple>

#include "mst/baselines/brute_force.hpp"
#include "mst/common/rng.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/platform/generator.hpp"
#include "mst/schedule/feasibility.hpp"
#include "mst/sim/static_replay.hpp"

namespace mst {
namespace {

using Param = std::tuple<int /*class*/, std::uint64_t /*seed*/>;

class SpiderProperty : public ::testing::TestWithParam<Param> {
 protected:
  [[nodiscard]] GeneratorParams params() const {
    GeneratorParams p;
    p.lo = 1;
    p.hi = 8;
    p.cls = all_platform_classes()[static_cast<std::size_t>(std::get<0>(GetParam()))];
    return p;
  }
  [[nodiscard]] std::uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(SpiderProperty, SchedulesAreAlwaysFeasible) {
  Rng rng(seed());
  for (int trial = 0; trial < 10; ++trial) {
    Rng inst = rng.split();
    const auto legs = static_cast<std::size_t>(rng.uniform(1, 4));
    const auto n = static_cast<std::size_t>(rng.uniform(1, 12));
    const Spider spider = random_spider(inst, legs, 3, params());
    const SpiderSchedule s = SpiderScheduler::schedule(spider, n);
    ASSERT_EQ(s.num_tasks(), n);
    const FeasibilityReport report = check_feasibility(s);
    ASSERT_TRUE(report.ok()) << spider.describe() << " n=" << n << "\n" << report.summary();
  }
}

TEST_P(SpiderProperty, MatchesBruteForceOptimum) {
  Rng rng(seed());
  for (int trial = 0; trial < 6; ++trial) {
    Rng inst = rng.split();
    const auto legs = static_cast<std::size_t>(rng.uniform(1, 3));
    const auto n = static_cast<std::size_t>(rng.uniform(1, 6));
    const Spider spider = random_spider(inst, legs, 2, params());
    const Time alg = SpiderScheduler::makespan(spider, n);
    const Time opt = brute_force_spider_makespan(spider, n);
    ASSERT_EQ(alg, opt) << spider.describe() << " n=" << n;
  }
}

TEST_P(SpiderProperty, MakespanMonotoneInTaskCount) {
  Rng rng(seed());
  Rng inst = rng.split();
  const Spider spider =
      random_spider(inst, static_cast<std::size_t>(rng.uniform(1, 4)), 3, params());
  Time prev = 0;
  for (std::size_t n = 1; n <= 10; ++n) {
    const Time m = SpiderScheduler::makespan(spider, n);
    EXPECT_GE(m, prev) << spider.describe() << " n=" << n;
    prev = m;
  }
}

TEST_P(SpiderProperty, DecisionAndMakespanFormsAreDual) {
  Rng rng(seed());
  Rng inst = rng.split();
  const Spider spider =
      random_spider(inst, static_cast<std::size_t>(rng.uniform(1, 3)), 2, params());
  constexpr std::size_t kMax = 8;
  std::vector<Time> makespans(kMax + 1, 0);
  for (std::size_t k = 1; k <= kMax; ++k) makespans[k] = SpiderScheduler::makespan(spider, k);
  for (Time t = 0; t <= makespans[kMax]; t += std::max<Time>(1, makespans[kMax] / 23)) {
    std::size_t expected = 0;
    while (expected < kMax && makespans[expected + 1] <= t) ++expected;
    EXPECT_EQ(SpiderScheduler::max_tasks(spider, t, kMax), expected)
        << spider.describe() << " T=" << t;
  }
}

TEST_P(SpiderProperty, ReplayAgreesWithAnalyticSchedule) {
  Rng rng(seed());
  for (int trial = 0; trial < 6; ++trial) {
    Rng inst = rng.split();
    const auto legs = static_cast<std::size_t>(rng.uniform(1, 4));
    const auto n = static_cast<std::size_t>(rng.uniform(1, 10));
    const Spider spider = random_spider(inst, legs, 3, params());
    const SpiderSchedule s = SpiderScheduler::schedule(spider, n);
    const sim::ReplayResult replayed = sim::replay(s);
    ASSERT_TRUE(replayed.ok) << spider.describe() << " n=" << n;
    EXPECT_EQ(replayed.makespan, s.makespan());
  }
}

TEST_P(SpiderProperty, DecisionFormMatchesBruteForceCount) {
  Rng rng(seed() + 900);
  for (int trial = 0; trial < 4; ++trial) {
    Rng inst = rng.split();
    const auto legs = static_cast<std::size_t>(rng.uniform(1, 2));
    const Spider spider = random_spider(inst, legs, 2, params());
    const Time t_lim = rng.uniform(0, 20);
    const std::size_t alg = SpiderScheduler::max_tasks(spider, t_lim, 6);
    EXPECT_EQ(alg, brute_force_spider_max_tasks(spider, t_lim, 6))
        << spider.describe() << " T=" << t_lim;
  }
}

TEST_P(SpiderProperty, DecisionFormNeverExceedsWindowOrCap) {
  Rng rng(seed());
  for (int trial = 0; trial < 8; ++trial) {
    Rng inst = rng.split();
    const Spider spider =
        random_spider(inst, static_cast<std::size_t>(rng.uniform(1, 4)), 3, params());
    const Time t_lim = rng.uniform(0, 40);
    const auto cap = static_cast<std::size_t>(rng.uniform(0, 10));
    const SpiderSchedule s = SpiderScheduler::schedule_within(spider, t_lim, cap);
    EXPECT_LE(s.num_tasks(), cap);
    for (const SpiderTask& task : s.tasks) EXPECT_LE(task.end(spider), t_lim);
    const FeasibilityReport report = check_feasibility(s);
    ASSERT_TRUE(report.ok()) << spider.describe() << "\n" << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    ClassesAndSeeds, SpiderProperty,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Values(5u, 55u)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name =
          to_string(all_platform_classes()[static_cast<std::size_t>(std::get<0>(info.param))]) +
          "_seed" + std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace mst
