// Tests of the §7 spider algorithm on known instances, including the Fig 7
// transformation artifact.

#include <gtest/gtest.h>

#include "mst/baselines/brute_force.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/fork_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/schedule/feasibility.hpp"

namespace mst {
namespace {

Chain fig2_chain() { return Chain::from_vectors({2, 3}, {3, 5}); }

TEST(SpiderScheduler, TransformReproducesFig7) {
  // One leg (the Fig 2 chain) at T_lim = 14: virtual nodes with link 2 and
  // processing times {12, 10, 8, 6, 3}.
  const Spider spider{fig2_chain()};
  const SpiderTransformation tf = SpiderScheduler::transform(spider, 14, 100);
  ASSERT_EQ(tf.leg_schedules.size(), 1u);
  EXPECT_EQ(tf.leg_schedules[0].num_tasks(), 5u);
  ASSERT_EQ(tf.nodes.size(), 5u);
  const std::vector<Time> expected = {12, 10, 8, 6, 3};
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_EQ(tf.nodes[j].exec, expected[j]);
    EXPECT_EQ(tf.nodes[j].comm, 2);
  }
}

TEST(SpiderScheduler, SingleLegEqualsChainScheduler) {
  const Spider spider{fig2_chain()};
  for (std::size_t n = 1; n <= 7; ++n) {
    EXPECT_EQ(SpiderScheduler::makespan(spider, n),
              ChainScheduler::makespan(fig2_chain(), n))
        << "n=" << n;
  }
}

TEST(SpiderScheduler, ForkShapedSpiderEqualsForkScheduler) {
  const Fork fork({Processor{2, 5}, Processor{4, 1}, Processor{1, 9}});
  const Spider spider = Spider::from_fork(fork);
  for (std::size_t n = 1; n <= 7; ++n) {
    EXPECT_EQ(SpiderScheduler::makespan(spider, n), ForkScheduler::makespan(fork, n))
        << "n=" << n;
  }
}

TEST(SpiderScheduler, KnownTwoLegInstance) {
  const Spider spider{fig2_chain(), Chain::from_vectors({4}, {2})};
  for (std::size_t n = 1; n <= 6; ++n) {
    const SpiderSchedule s = SpiderScheduler::schedule(spider, n);
    ASSERT_EQ(s.num_tasks(), n);
    EXPECT_TRUE(check_feasibility(s).ok()) << check_feasibility(s).summary();
    EXPECT_EQ(s.makespan(), brute_force_spider_makespan(spider, n)) << "n=" << n;
  }
}

TEST(SpiderScheduler, DecisionFormWithinWindow) {
  const Spider spider{fig2_chain(), Chain::from_vectors({4}, {2})};
  for (Time t = 0; t <= 20; t += 2) {
    const SpiderSchedule s = SpiderScheduler::schedule_within(spider, t, 50);
    const FeasibilityReport report = check_feasibility(s);
    ASSERT_TRUE(report.ok()) << "T=" << t << "\n" << report.summary();
    for (const SpiderTask& task : s.tasks) {
      EXPECT_LE(task.end(spider), t);
      EXPECT_GE(task.emissions.front(), 0);
    }
  }
}

TEST(SpiderScheduler, DecisionFormMonotoneInWindow) {
  const Spider spider{fig2_chain(), Chain::from_vectors({4}, {2}),
                      Chain::from_vectors({1, 1}, {2, 2})};
  std::size_t prev = 0;
  for (Time t = 0; t <= 30; ++t) {
    const std::size_t k = SpiderScheduler::max_tasks(spider, t, 100);
    EXPECT_GE(k, prev) << "T=" << t;
    prev = k;
  }
}

TEST(SpiderScheduler, CapIsHonored) {
  const Spider spider{Chain::from_vectors({1}, {1}), Chain::from_vectors({1}, {1})};
  EXPECT_EQ(SpiderScheduler::schedule_within(spider, 1000, 7).num_tasks(), 7u);
}

TEST(SpiderScheduler, MinimalityOfTheWindow) {
  const Spider spider{fig2_chain(), Chain::from_vectors({4}, {2})};
  for (std::size_t n = 1; n <= 6; ++n) {
    const Time m = SpiderScheduler::makespan(spider, n);
    EXPECT_LT(SpiderScheduler::max_tasks(spider, m - 1, n), n) << "n=" << n;
    EXPECT_GE(SpiderScheduler::max_tasks(spider, m, n), n) << "n=" << n;
  }
}

TEST(SpiderScheduler, RejectsInvalidArguments) {
  const Spider spider{fig2_chain()};
  EXPECT_THROW(SpiderScheduler::schedule(spider, 0), std::invalid_argument);
  EXPECT_THROW(SpiderScheduler::schedule_within(spider, -1, 5), std::invalid_argument);
}

TEST(SpiderScheduler, ScheduleIsNormalizedToZero) {
  const Spider spider{fig2_chain(), Chain::from_vectors({4}, {2})};
  const SpiderSchedule s = SpiderScheduler::schedule(spider, 5);
  Time earliest = kTimeInfinity;
  for (const SpiderTask& t : s.tasks) earliest = std::min(earliest, t.emissions.front());
  EXPECT_EQ(earliest, 0);
}

TEST(SpiderScheduler, StarvedLegGetsNothing) {
  // A leg whose single processor is absurdly slow should receive no tasks
  // when the other leg can absorb everything faster.
  const Spider spider{Chain::from_vectors({1}, {1}), Chain::from_vectors({1}, {1000})};
  const SpiderSchedule s = SpiderScheduler::schedule(spider, 6);
  const auto counts = s.tasks_per_leg();
  EXPECT_EQ(counts[0], 6u);
  EXPECT_EQ(counts[1], 0u);
}

}  // namespace
}  // namespace mst
