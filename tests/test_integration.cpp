// End-to-end integration tests: generate → schedule → validate → replay →
// export, plus cross-validation between every pair of components that must
// agree.

#include <gtest/gtest.h>

#include "mst/mst.hpp"

namespace mst {
namespace {

TEST(Integration, FullChainPipeline) {
  Rng rng(2026);
  GeneratorParams params{1, 10, PlatformClass::kUniform};
  const Chain chain = random_chain(rng, 4, params);

  // Text round trip.
  const Chain parsed = parse_chain(write_chain(chain));
  ASSERT_EQ(parsed, chain);

  // Optimal schedule + validation through all three validators.
  const ChainSchedule s = ChainScheduler::schedule(parsed, 9);
  ASSERT_TRUE(check_feasibility(s).ok()) << check_feasibility(s).summary();
  const sim::ReplayResult replayed = sim::replay(s);
  ASSERT_TRUE(replayed.ok);
  EXPECT_EQ(replayed.makespan, s.makespan());

  // Exports produce non-trivial artifacts.
  EXPECT_GT(render_gantt(s).size(), 10u);
  EXPECT_NE(render_svg(s).find("</svg>"), std::string::npos);
  EXPECT_NE(to_json(s).find("\"makespan\""), std::string::npos);

  // Metrics agree with the schedule.
  const ChainUtilization u = compute_utilization(s);
  EXPECT_EQ(u.makespan, s.makespan());
}

TEST(Integration, FullSpiderPipeline) {
  Rng rng(2027);
  GeneratorParams params{1, 9, PlatformClass::kCorrelated};
  const Spider spider = random_spider(rng, 3, 3, params);

  const Spider parsed = parse_spider(write_spider(spider));
  ASSERT_EQ(parsed, spider);

  const SpiderSchedule s = SpiderScheduler::schedule(parsed, 8);
  ASSERT_TRUE(check_feasibility(s).ok()) << check_feasibility(s).summary();
  const sim::ReplayResult replayed = sim::replay(s);
  ASSERT_TRUE(replayed.ok);
  EXPECT_EQ(replayed.makespan, s.makespan());
  EXPECT_NE(to_json(s).find("\"legs\""), std::string::npos);
}

TEST(Integration, EveryComponentAgreesOnTheOptimum) {
  // alg == brute force == replay == bounded by LB/UB, on one instance.
  const Chain chain = Chain::from_vectors({2, 1, 3}, {4, 2, 5});
  const std::size_t n = 6;
  const Time alg = ChainScheduler::makespan(chain, n);
  EXPECT_EQ(alg, brute_force_chain_makespan(chain, n));
  EXPECT_GE(alg, chain_makespan_lower_bound(chain, n));
  EXPECT_LE(alg, single_node_chain_makespan(chain, n));
  EXPECT_LE(alg, forward_greedy_chain_makespan(chain, n));
  EXPECT_LE(alg, round_robin_chain_makespan(chain, n));
}

TEST(Integration, PlannerBeatsOnlinePoliciesOnAHardInstance) {
  // Anti-correlated platforms (fast links on slow processors) are where
  // lookahead pays; the planner must strictly beat round-robin here.
  const Spider spider{Chain::from_vectors({1, 2}, {9, 2}), Chain::from_vectors({3}, {4}),
                      Chain::from_vectors({2}, {7})};
  const std::size_t n = 12;
  const Time optimal = SpiderScheduler::makespan(spider, n);
  const Tree tree = tree_from_spider(spider);
  const Time rr = sim::simulate_online(tree, n, sim::OnlinePolicy::kRoundRobin, 0).makespan;
  EXPECT_LT(optimal, rr);
}

TEST(Integration, DecisionFormDrivesThroughputCurves) {
  // tasks(T) staircase from the decision form must invert the makespan
  // curve from the optimization form, spider edition.
  const Spider spider{Chain::from_vectors({2, 3}, {3, 5}), Chain::from_vectors({4}, {2})};
  for (std::size_t n = 1; n <= 5; ++n) {
    const Time m = SpiderScheduler::makespan(spider, n);
    EXPECT_GE(SpiderScheduler::max_tasks(spider, m, 20), n);
    EXPECT_LT(SpiderScheduler::max_tasks(spider, m - 1, 20), n);
  }
}

TEST(Integration, TreeHeuristicEndToEnd) {
  Rng rng(2028);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  const Tree tree = random_tree(rng, 9, params);
  const std::size_t n = 10;

  const TreeScheduleResult plan = schedule_tree_via_cover(tree, n);
  const sim::SimResult replay = sim::simulate_dispatch(tree, plan.destinations);
  const sim::SimResult ect =
      sim::simulate_online(tree, n, sim::OnlinePolicy::kEarliestCompletion, 0);

  const double rate = tree_steady_state_rate(tree);
  EXPECT_GT(rate, 0.0);
  // Both strategies complete all tasks; neither outruns the busy-time bound.
  const auto lb = static_cast<Time>(static_cast<double>(n) / rate * 0.5);
  EXPECT_GE(replay.makespan, lb);
  EXPECT_GE(ect.makespan, lb);
}

TEST(Integration, JsonDumpsAreWellFormedEnoughToDiff) {
  const Spider spider{Chain::from_vectors({2}, {3})};
  const SpiderSchedule s = SpiderScheduler::schedule(spider, 2);
  const std::string json = to_json(s);
  // Balanced braces / brackets (cheap structural check without a parser).
  int braces = 0;
  int brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

}  // namespace
}  // namespace mst
