// Allocation-free counting paths: the count-only decision forms must agree
// exactly with the materializing constructions, and — after a warm-up call
// that sizes the scratch buffers — perform zero heap allocations.  The
// sweep runner's `materialize=false` hot path depends on both properties.
//
// The shared probe (tests/support/alloc_probe.hpp) replaces the global
// allocation functions with counting wrappers; the counters only matter
// between `arm()` and `allocations()`, so the GTest machinery's own
// allocations are irrelevant.

#include <gtest/gtest.h>

#include "mst/core/chain_scheduler.hpp"
#include "mst/core/fork_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/common/rng.hpp"
#include "mst/platform/generator.hpp"
#include "support/alloc_probe.hpp"

namespace mst {
namespace {

TEST(ChainCounting, MatchesMaterializedConstruction) {
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    Rng inst = rng.split();
    const auto p = static_cast<std::size_t>(rng.uniform(1, 5));
    const GeneratorParams params{1, 9, all_platform_classes()[trial % 5]};
    const Chain chain = random_chain(inst, p, params);
    ChainCountScratch scratch;
    for (const Time t_lim : {0, 3, 17, 40, 95}) {
      const std::size_t cap = static_cast<std::size_t>(rng.uniform(1, 40));
      EXPECT_EQ(ChainScheduler::count_within(chain, t_lim, cap, scratch),
                ChainScheduler::schedule_within(chain, t_lim, cap).tasks.size())
          << chain.describe() << " T=" << t_lim << " cap=" << cap;
    }
  }
}

TEST(SpiderCounting, MatchesMaterializedConstruction) {
  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    Rng inst = rng.split();
    const auto legs = static_cast<std::size_t>(rng.uniform(1, 4));
    const GeneratorParams params{1, 9, all_platform_classes()[trial % 5]};
    const Spider spider = random_spider(inst, legs, 3, params);
    SpiderCountScratch scratch;
    for (const Time t_lim : {0, 5, 21, 60, 140}) {
      const std::size_t cap = static_cast<std::size_t>(rng.uniform(1, 50));
      EXPECT_EQ(SpiderScheduler::count_within(spider, t_lim, cap, scratch),
                SpiderScheduler::schedule_within(spider, t_lim, cap).tasks.size())
          << spider.describe() << " T=" << t_lim << " cap=" << cap;
    }
  }
}

TEST(ChainCounting, ZeroAllocationsAfterWarmup) {
  Rng rng(11);
  const Chain chain = random_chain(rng, 8, GeneratorParams{1, 9, PlatformClass::kUniform});
  ChainCountScratch scratch;
  const std::size_t expected = ChainScheduler::count_within(chain, 200, 4096, scratch);

  alloc_probe::arm();
  const std::size_t counted = ChainScheduler::count_within(chain, 200, 4096, scratch);
  const long allocations = alloc_probe::allocations();
  EXPECT_EQ(counted, expected);
  EXPECT_GT(counted, 0u);
  EXPECT_EQ(allocations, 0);
}

TEST(SpiderCounting, ZeroAllocationsAfterWarmup) {
  Rng rng(12);
  const Spider spider = random_spider(rng, 4, 3, GeneratorParams{1, 9, PlatformClass::kUniform});
  SpiderCountScratch scratch;
  const std::size_t expected = SpiderScheduler::count_within(spider, 300, 4096, scratch);

  alloc_probe::arm();
  const std::size_t counted = SpiderScheduler::count_within(spider, 300, 4096, scratch);
  const long allocations = alloc_probe::allocations();
  EXPECT_EQ(counted, expected);
  EXPECT_GT(counted, 0u);
  EXPECT_EQ(allocations, 0);
}

TEST(ForkCounting, MatchesMaterializedConstruction) {
  Rng rng(2025);
  for (int trial = 0; trial < 60; ++trial) {
    Rng inst = rng.split();
    const auto p = static_cast<std::size_t>(rng.uniform(1, 5));
    const GeneratorParams params{1, 9, all_platform_classes()[trial % 5]};
    const Fork fork = random_fork(inst, p, params);
    ForkCountScratch scratch;
    for (const Time t_lim : {0, 4, 19, 45, 120}) {
      const std::size_t cap = static_cast<std::size_t>(rng.uniform(1, 40));
      const ForkSchedule materialized = ForkScheduler::schedule_within(fork, t_lim, cap);
      EXPECT_EQ(ForkScheduler::count_within(fork, t_lim, cap, scratch),
                materialized.tasks.size())
          << fork.describe() << " T=" << t_lim << " cap=" << cap;
      // The count+makespan twin replays the full pipeline.
      const auto [tasks, makespan] = ForkScheduler::makespan_within(fork, t_lim, cap, scratch);
      EXPECT_EQ(tasks, materialized.tasks.size());
      EXPECT_EQ(makespan, materialized.makespan())
          << fork.describe() << " T=" << t_lim << " cap=" << cap;
    }
  }
}

TEST(ForkCounting, ZeroAllocationsAfterWarmup) {
  Rng rng(13);
  const Fork fork = random_fork(rng, 6, GeneratorParams{1, 9, PlatformClass::kUniform});
  ForkCountScratch scratch;
  const std::size_t expected = ForkScheduler::count_within(fork, 250, 4096, scratch);
  const auto expected_pair = ForkScheduler::makespan_within(fork, 250, 4096, scratch);

  alloc_probe::arm();
  const std::size_t counted = ForkScheduler::count_within(fork, 250, 4096, scratch);
  const auto pair = ForkScheduler::makespan_within(fork, 250, 4096, scratch);
  const long allocations = alloc_probe::allocations();
  EXPECT_EQ(counted, expected);
  EXPECT_EQ(pair, expected_pair);
  EXPECT_GT(counted, 0u);
  EXPECT_EQ(allocations, 0);
}

TEST(Counting, MooreHodgsonCountMatchesSelection) {
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<DeadlineJob> jobs;
    const auto count = static_cast<std::size_t>(rng.uniform(0, 12));
    for (std::size_t i = 0; i < count; ++i) {
      jobs.push_back({rng.uniform(1, 9), rng.uniform(0, 40), i});
    }
    std::vector<DeadlineJob> scratch_jobs = jobs;
    std::vector<Time> heap;
    EXPECT_EQ(moore_hodgson_count(scratch_jobs, heap), moore_hodgson(jobs).size());
  }
}

}  // namespace
}  // namespace mst
