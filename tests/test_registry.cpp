// Tests of the algorithm registry (mst/api/registry.hpp): enumeration,
// lookup, dispatch, custom registration, and — the load-bearing one —
// that every registered (platform kind, algorithm) pair produces a
// feasible schedule of the requested size on a small instance.

#include <gtest/gtest.h>

#include <stdexcept>

#include "mst/api/registry.hpp"
#include "mst/common/rng.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/fork_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/platform/generator.hpp"

namespace mst {
namespace {

Chain fig2_chain() { return Chain::from_vectors({2, 3}, {3, 5}); }

Fork small_fork() { return Fork{{2, 3}, {1, 4}, {3, 2}}; }

Spider small_spider() {
  return Spider{Chain::from_vectors({2, 3}, {3, 5}), Chain::from_vectors({4}, {2})};
}

Tree small_tree() {
  // Master -> a -> b, master -> c: a spider-unfriendly branch below `a`.
  Tree tree;
  const NodeId a = tree.add_node(0, {2, 3});
  tree.add_node(a, {1, 2});
  tree.add_node(a, {2, 4});
  tree.add_node(0, {3, 2});
  return tree;
}

api::Platform platform_of(api::PlatformKind kind) {
  switch (kind) {
    case api::PlatformKind::kChain: return fig2_chain();
    case api::PlatformKind::kFork: return small_fork();
    case api::PlatformKind::kSpider: return small_spider();
    case api::PlatformKind::kTree: return small_tree();
  }
  throw std::logic_error("unreachable");
}

TEST(Registry, KindNamesRoundTrip) {
  for (api::PlatformKind kind : api::all_platform_kinds()) {
    EXPECT_EQ(api::platform_kind_from(api::to_string(kind)), kind);
  }
  EXPECT_FALSE(api::platform_kind_from("grid").has_value());
}

TEST(Registry, KindOfMatchesAlternative) {
  EXPECT_EQ(api::kind_of(fig2_chain()), api::PlatformKind::kChain);
  EXPECT_EQ(api::kind_of(small_fork()), api::PlatformKind::kFork);
  EXPECT_EQ(api::kind_of(small_spider()), api::PlatformKind::kSpider);
  EXPECT_EQ(api::kind_of(small_tree()), api::PlatformKind::kTree);
  EXPECT_EQ(api::num_processors(api::Platform(fig2_chain())), 2u);
  EXPECT_EQ(api::num_processors(api::Platform(small_tree())), 4u);
}

TEST(Registry, EveryKindHasAlgorithms) {
  for (api::PlatformKind kind : api::all_platform_kinds()) {
    EXPECT_FALSE(api::registry().names(kind).empty()) << api::to_string(kind);
  }
  // "optimal" exists for every exactly-solved family.
  for (api::PlatformKind kind : {api::PlatformKind::kChain, api::PlatformKind::kFork,
                                 api::PlatformKind::kSpider}) {
    EXPECT_NE(api::registry().find(kind, "optimal"), nullptr);
  }
}

// The acceptance test of the registration contract: every entry solves a
// small instance into a feasible schedule holding exactly `n` tasks.
TEST(Registry, EveryAlgorithmProducesFeasibleSchedules) {
  const std::size_t n = 6;
  for (const api::AlgorithmInfo& info : api::registry().list()) {
    const api::Platform platform = platform_of(info.kind);
    const api::SolveResult result = api::registry().solve(platform, info.name, n);
    SCOPED_TRACE(api::to_string(info.kind) + "/" + info.name);
    EXPECT_EQ(result.tasks, n);
    EXPECT_EQ(result.kind, info.kind);
    EXPECT_EQ(result.algorithm, info.name);
    EXPECT_EQ(result.optimal, info.optimal);
    EXPECT_GT(result.makespan, 0);
    const FeasibilityReport report = api::check_feasibility(result);
    EXPECT_TRUE(report.ok()) << report.summary();
  }
}

// No heuristic may beat the provably optimal makespan, and every optimal
// entry must agree with the core scheduler it wraps.
TEST(Registry, OptimalEntriesMatchCoreSchedulers) {
  const std::size_t n = 7;
  EXPECT_EQ(api::registry().solve(fig2_chain(), "optimal", n).makespan,
            ChainScheduler::makespan(fig2_chain(), n));
  EXPECT_EQ(api::registry().solve(small_fork(), "optimal", n).makespan,
            ForkScheduler::makespan(small_fork(), n));
  EXPECT_EQ(api::registry().solve(small_spider(), "optimal", n).makespan,
            SpiderScheduler::makespan(small_spider(), n));

  for (api::PlatformKind kind : {api::PlatformKind::kChain, api::PlatformKind::kFork,
                                 api::PlatformKind::kSpider}) {
    const api::Platform platform = platform_of(kind);
    const Time optimal = api::registry().solve(platform, "optimal", n).makespan;
    for (const api::AlgorithmInfo& info : api::registry().list(kind)) {
      const api::SolveResult result = api::registry().solve(platform, info.name, n);
      SCOPED_TRACE(api::to_string(kind) + "/" + info.name);
      EXPECT_GE(result.makespan, optimal);
      if (info.optimal) {
        EXPECT_EQ(result.makespan, optimal);
      }
      EXPECT_LE(result.lower_bound, result.makespan);
    }
  }
}

TEST(Registry, RandomInstancesStayFeasible) {
  Rng rng(0xC0FFEE);
  const GeneratorParams params{1, 10, PlatformClass::kUniform};
  for (int t = 0; t < 10; ++t) {
    Rng inst = rng.split();
    const Spider spider = random_spider(inst, 3, 3, params);
    const Tree tree = random_tree(inst, 6, params);
    for (const api::AlgorithmInfo& info : api::registry().list(api::PlatformKind::kSpider)) {
      if (info.exponential) continue;
      const api::SolveResult result = api::registry().solve(spider, info.name, 9);
      SCOPED_TRACE("spider/" + info.name);
      EXPECT_TRUE(api::check_feasibility(result).ok());
    }
    for (const api::AlgorithmInfo& info : api::registry().list(api::PlatformKind::kTree)) {
      const api::SolveResult result = api::registry().solve(tree, info.name, 9);
      SCOPED_TRACE("tree/" + info.name);
      EXPECT_TRUE(api::check_feasibility(result).ok());
    }
  }
}

TEST(Registry, UnknownAlgorithmThrowsWithKnownNames) {
  try {
    (void)api::registry().solve(fig2_chain(), "simulated-annealing", 4);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error names the platform kind and enumerates the alternatives.
    EXPECT_NE(std::string(e.what()).find("chain"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("optimal"), std::string::npos);
  }
}

TEST(Registry, WrongPlatformAlternativeThrows) {
  // A chain algorithm invoked with a spider platform must refuse, not crash.
  const api::Scheduler* scheduler =
      api::registry().find(api::PlatformKind::kChain, "optimal");
  ASSERT_NE(scheduler, nullptr);
  EXPECT_THROW((void)scheduler->solve(api::Platform(small_spider()), 4),
               std::invalid_argument);
  EXPECT_THROW((void)api::registry().solve(fig2_chain(), "optimal", 0),
               std::invalid_argument);
}

// Extending the library is one `add()` call: the new entry is enumerable
// and dispatchable exactly like the built-ins.
TEST(Registry, CustomRegistrationIsOneLine) {
  api::Registry local;
  local.add({api::PlatformKind::kChain, "always-first",
             "send everything to processor 0 (test stub)", /*optimal=*/false,
             /*exponential=*/false, WorkloadFeatures{}},
            [](const api::Platform& platform, std::size_t n) {
              const Chain& chain = std::get<Chain>(platform);
              api::SolveResult result;
              result.algorithm = "always-first";
              result.kind = api::PlatformKind::kChain;
              result.tasks = n;
              ChainSchedule schedule =
                  ChainScheduler::schedule(Chain{chain.proc(0)}, n);
              result.makespan = schedule.makespan();
              result.schedule = std::move(schedule);
              return result;
            });
  ASSERT_EQ(local.size(), 1u);
  EXPECT_EQ(local.list(api::PlatformKind::kChain).front().name, "always-first");

  const api::SolveResult result = local.solve(Chain{{2, 5}}, "always-first", 4);
  EXPECT_EQ(result.tasks, 4u);
  EXPECT_TRUE(api::check_feasibility(result).ok());

  // Duplicate (kind, name) pairs and empty names are rejected.
  EXPECT_THROW(local.add({api::PlatformKind::kChain, "always-first", "dup",
                          /*optimal=*/false, /*exponential=*/false, WorkloadFeatures{}},
                         [](const api::Platform&, std::size_t) { return api::SolveResult{}; }),
               std::invalid_argument);
  EXPECT_THROW(local.add({api::PlatformKind::kChain, "", "anonymous",
                          /*optimal=*/false, /*exponential=*/false, WorkloadFeatures{}},
                         [](const api::Platform&, std::size_t) { return api::SolveResult{}; }),
               std::invalid_argument);
}

// A makespan-only result must not pass feasibility checking silently.
TEST(Registry, UncheckedResultsAreFlagged) {
  api::SolveResult bare;
  bare.tasks = 3;
  bare.makespan = 10;
  EXPECT_FALSE(api::check_feasibility(bare).ok());
}

}  // namespace
}  // namespace mst
