// Tests of the Fig 6 / Fig 7 virtual single-task-node expansions.

#include <gtest/gtest.h>

#include "mst/core/chain_scheduler.hpp"
#include "mst/core/virtual_nodes.hpp"

namespace mst {
namespace {

TEST(VirtualNodes, Fig6ComputeBoundExpansion) {
  // Slave (c=2, w=5): m = 5, processing times 5, 10, 15, ...
  const auto nodes = expand_fork_slave(Processor{2, 5}, 3, /*t_lim=*/18, /*max=*/10);
  ASSERT_EQ(nodes.size(), 3u);  // 5+2<=18, 10+2<=18, 15+2<=18, 20+2>18
  for (std::size_t q = 0; q < nodes.size(); ++q) {
    EXPECT_EQ(nodes[q].source, 3u);
    EXPECT_EQ(nodes[q].rank, q);
    EXPECT_EQ(nodes[q].comm, 2);
    EXPECT_EQ(nodes[q].exec, 5 + static_cast<Time>(q) * 5);
  }
  EXPECT_EQ(nodes[0].deadline(18), 13);
}

TEST(VirtualNodes, Fig6LinkBoundExpansion) {
  // Slave (c=4, w=1): m = 4 — arrivals pace the executions.
  const auto nodes = expand_fork_slave(Processor{4, 1}, 0, /*t_lim=*/14, /*max=*/10);
  ASSERT_EQ(nodes.size(), 3u);  // 1, 5, 9 (13+4 > 14)
  EXPECT_EQ(nodes[0].exec, 1);
  EXPECT_EQ(nodes[1].exec, 5);
  EXPECT_EQ(nodes[2].exec, 9);
}

TEST(VirtualNodes, ExpansionHonorsCapAndWindow) {
  EXPECT_EQ(expand_fork_slave(Processor{1, 1}, 0, 100, 4).size(), 4u);
  EXPECT_TRUE(expand_fork_slave(Processor{3, 5}, 0, 7, 10).empty());  // 5+3 > 7
  EXPECT_TRUE(expand_fork_slave(Processor{1, 1}, 0, 0, 10).empty());
}

TEST(VirtualNodes, ForkExpansionConcatenatesSlaves) {
  const Fork fork({Processor{2, 5}, Processor{4, 1}});
  const auto nodes = expand_fork(fork, 14, 10);
  std::size_t from0 = 0;
  std::size_t from1 = 0;
  for (const VirtualNode& node : nodes) {
    if (node.source == 0) ++from0;
    if (node.source == 1) ++from1;
  }
  EXPECT_EQ(from0, 2u);  // 5, 10 (15+2 > 14... 12+2=14 ok -> 5,10; 15+2>14)
  EXPECT_EQ(from1, 3u);  // 1, 5, 9
}

TEST(VirtualNodes, Fig7LegExpansionMatchesPaper) {
  // The Fig 2 chain within T_lim = 14 gives virtual processing times
  // {12, 10, 8, 6, 3} over a link of latency 2 — exactly Fig 7.
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  const ChainSchedule within = ChainScheduler::schedule_within(chain, 14, 100);
  ASSERT_EQ(within.num_tasks(), 5u);
  const auto nodes = expand_leg(within, 7, 14);
  ASSERT_EQ(nodes.size(), 5u);
  const std::vector<Time> expected_exec = {12, 10, 8, 6, 3};
  for (std::size_t j = 0; j < nodes.size(); ++j) {
    EXPECT_EQ(nodes[j].exec, expected_exec[j]) << "node " << j;
    EXPECT_EQ(nodes[j].comm, 2);
    EXPECT_EQ(nodes[j].source, 7u);
    EXPECT_EQ(nodes[j].rank, nodes.size() - 1 - j);
  }
}

TEST(VirtualNodes, LegExpansionDeadlineIsEmissionCompletion) {
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  const ChainSchedule within = ChainScheduler::schedule_within(chain, 14, 100);
  const auto nodes = expand_leg(within, 0, 14);
  for (std::size_t j = 0; j < nodes.size(); ++j) {
    EXPECT_EQ(nodes[j].deadline(14), within.tasks[j].emissions.front() + chain.comm(0));
  }
}

TEST(VirtualNodes, ToStringIsInformative) {
  const VirtualNode node{1, 2, 3, 4};
  EXPECT_EQ(to_string(node), "node{source=1, rank=2, comm=3, exec=4}");
}

}  // namespace
}  // namespace mst
