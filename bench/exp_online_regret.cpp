// REGRET: online-vs-offline throughput over arrival intensity — what the
// paper's offline optimality is worth once tasks arrive one at a time and
// `n` is unknown.
//
// Every online cell runs the no-lookahead streaming driver
// (mst/sim/streaming.hpp): the policy observes arrivals only, never the
// task count.  The reported ratio is online/offline *throughput*
// (equivalently offline/online makespan), so 1.0 means the stream lost
// nothing and smaller is worse.  Offline references are exact only where
// the library's optimality proofs reach: chains under any release stream
// (minimal-horizon backward construction), forks and spiders at the
// everything-at-time-0 point (Theorems 1/3); elsewhere the ratio column
// shows "-".  On every exact-offline cell the ratio must be <= 1 — the
// streamed execution is a feasible schedule of the same workload — and the
// driver exits nonzero if any cell violates that.
//
//   exp_online_regret [--seed=S] [--tasks=N]

#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "mst/common/cli.hpp"
#include "mst/common/table.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/fork_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/scenario/generators.hpp"
#include "mst/sim/streaming.hpp"
#include "mst/workload/arrival.hpp"

namespace {

using namespace mst;

struct PolicyRun {
  std::string name;
  Time makespan = 0;
  double mean_latency = 0;
  std::size_t peak_backlog = 0;
};

/// All streaming policies applicable to `platform`: the re-planner on
/// exactly solved kinds, the four adapted dispatchers everywhere.
std::vector<PolicyRun> run_policies(const api::Platform& platform, const Workload& workload,
                                    std::uint64_t seed) {
  std::vector<PolicyRun> runs;
  const Tree substrate = sim::stream_substrate(platform);
  if (api::kind_of(platform) != api::PlatformKind::kTree) {
    const std::unique_ptr<sim::StreamPolicy> replan = sim::make_replan_policy(platform);
    const sim::StreamResult r = sim::simulate_stream(substrate, workload, *replan);
    runs.push_back({"replan", r.sim.makespan, r.metrics.mean_latency, r.metrics.peak_backlog});
  }
  for (sim::OnlinePolicy policy : sim::all_online_policies()) {
    const std::unique_ptr<sim::StreamPolicy> adapted =
        sim::make_stream_policy(substrate, policy, seed);
    const sim::StreamResult r = sim::simulate_stream(substrate, workload, *adapted);
    runs.push_back({to_string(policy), r.sim.makespan, r.metrics.mean_latency,
                    r.metrics.peak_backlog});
  }
  return runs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 29));
  const auto n = static_cast<std::size_t>(args.get_int("tasks", 24));

  std::cout << "REGRET — online/offline throughput ratio over arrival intensity\n"
            << "(" << n << " tasks; gap 0 = everything released at time 0; ratio 1.0 = the\n"
            << "stream lost nothing; '-' = no exact offline reference for the cell)\n\n";

  const std::vector<Time> gaps = {0, 1, 2, 4, 8, 16};
  std::size_t exact_cells = 0;
  std::size_t violations = 0;

  Table table({"kind", "platform", "gap", "policy", "online", "offline", "ratio", "latency",
               "backlog"});
  for (api::PlatformKind kind :
       {api::PlatformKind::kChain, api::PlatformKind::kFork, api::PlatformKind::kSpider}) {
    for (std::size_t instance = 0; instance < 2; ++instance) {
      scenario::PlatformSpec spec;
      spec.kind = kind;
      spec.size = 3;
      spec.lo = 1;
      spec.hi = 9;
      const std::uint64_t platform_seed =
          scenario::derive_seed(seed, static_cast<std::uint64_t>(kind), instance);
      const api::Platform platform = scenario::make_platform(spec, platform_seed);
      for (Time gap : gaps) {
        WorkloadGen gen;
        if (gap > 0) gen.arrival = ArrivalDist{ArrivalDist::Kind::kPoisson, gap, 0};
        const Workload workload =
            gen.make(n, scenario::derive_seed(seed, 0xA881, platform_seed, gap));

        // Exact offline optimum where the proofs reach; 0 elsewhere.
        Time offline = 0;
        if (const auto* chain = std::get_if<Chain>(&platform)) {
          offline = ChainScheduler::schedule(*chain, workload).makespan();
        } else if (!workload.has_release_dates()) {
          offline = std::holds_alternative<Fork>(platform)
                        ? ForkScheduler::makespan(std::get<Fork>(platform), n)
                        : SpiderScheduler::makespan(std::get<Spider>(platform), n);
        }

        for (const PolicyRun& run : run_policies(platform, workload, seed)) {
          Table& row = table.row();
          row.cell(to_string(kind))
              .cell(std::to_string(instance))
              .cell(gap)
              .cell(run.name)
              .cell(run.makespan);
          if (offline > 0 && run.makespan > 0) {
            const double ratio =
                static_cast<double>(offline) / static_cast<double>(run.makespan);
            ++exact_cells;
            if (ratio > 1.0 + 1e-12) ++violations;
            row.cell(offline).cell(ratio, 4);
          } else {
            row.cell("-").cell("-");
          }
          row.cell(run.mean_latency, 2).cell(run.peak_backlog);
        }
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nexact-offline cells: " << exact_cells << ", ratio > 1 violations: "
            << violations << "\n";
  if (violations > 0) {
    std::cout << "FAIL: an online stream beat a provably optimal offline schedule\n";
    return 1;
  }
  std::cout << "PASS: every exact-offline cell has online/offline throughput <= 1\n"
            << "\nReading: the re-planner tracks the optimum closely at low intensity\n"
               "(large gaps leave the backlog shallow) and degenerates gracefully to it\n"
               "at gap 0; the heterogeneity-blind dispatchers pay the full online tax.\n";
  return 0;
}
