// ROBUST: sensitivity of the optimal plan to platform mis-estimation — an
// extension beyond the paper's exactly-known-platform model.  For each
// noise band ε, the plan computed on the *believed* platform is re-timed on
// the *actual* (perturbed) platform and compared to re-planning.
//
// The believed platforms are scenario-engine families (`make_platform` with
// `derive_seed`, the same derivation the sweep expander uses), so the trial
// set is fully determined by --seed and reproducible cell by cell.

#include <iostream>
#include <variant>

#include "mst/analysis/robustness.hpp"
#include "mst/common/cli.hpp"
#include "mst/common/stats.hpp"
#include "mst/common/table.hpp"
#include "mst/scenario/generators.hpp"

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 40));
  const auto n = static_cast<std::size_t>(args.get_int("n", 20));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 99));

  std::cout << "ROBUST — stale plan vs re-planning under platform noise\n"
            << "(" << trials << " scenario-generated platforms per cell, n=" << n
            << " tasks; degradation = stale makespan / optimal makespan)\n\n";

  Table table({"shape", "class", "noise ±ε", "mean degr.", "p95 degr.", "max degr."});

  const double epsilons[] = {0.1, 0.25, 0.5};
  for (PlatformClass cls : {PlatformClass::kUniform, PlatformClass::kAntiCorrelated}) {
    scenario::PlatformSpec chain_spec;
    chain_spec.kind = api::PlatformKind::kChain;
    chain_spec.cls = cls;
    chain_spec.size = 4;
    chain_spec.lo = 2;
    chain_spec.hi = 12;

    scenario::PlatformSpec spider_spec = chain_spec;
    spider_spec.kind = api::PlatformKind::kSpider;
    spider_spec.size = 3;  // legs
    spider_spec.min_leg_len = 1;
    spider_spec.max_leg_len = 2;

    for (double eps : epsilons) {
      Sample chain_degr;
      Sample spider_degr;
      for (int t = 0; t < trials; ++t) {
        // The trial seed deliberately excludes the noise band: every ε row
        // re-perturbs the *same* believed platforms with the *same*
        // underlying noise draws (scaled by ε), so the rows are a paired
        // comparison of noise sensitivity, not of platform sampling.
        const std::uint64_t cell = scenario::derive_seed(
            seed, static_cast<std::uint64_t>(cls), static_cast<std::uint64_t>(t));
        const Chain believed_chain =
            std::get<Chain>(scenario::make_platform(chain_spec, cell));
        Rng chain_noise(scenario::derive_seed(cell, 1));
        const Chain actual_chain = perturb(believed_chain, eps, chain_noise);
        chain_degr.add(evaluate_stale_plan(believed_chain, actual_chain, n).degradation());

        const Spider believed_spider =
            std::get<Spider>(scenario::make_platform(spider_spec, cell));
        Rng spider_noise(scenario::derive_seed(cell, 2));
        const Spider actual_spider = perturb(believed_spider, eps, spider_noise);
        spider_degr.add(evaluate_stale_plan(believed_spider, actual_spider, n).degradation());
      }
      table.row()
          .cell("chain")
          .cell(to_string(cls))
          .cell(eps, 2)
          .cell(chain_degr.mean(), 3)
          .cell(chain_degr.quantile(0.95), 3)
          .cell(chain_degr.max(), 3);
      table.row()
          .cell("spider")
          .cell(to_string(cls))
          .cell(eps, 2)
          .cell(spider_degr.mean(), 3)
          .cell(spider_degr.quantile(0.95), 3)
          .cell(spider_degr.max(), 3);
    }
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: degradation >= 1.000 always (re-planning is optimal by\n"
               "Theorems 1/3); it grows with ε, and anti-correlated platforms are the\n"
               "most sensitive — mis-ranking a fast-link/slow-cpu node is costly.\n";
  return 0;
}
