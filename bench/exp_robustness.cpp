// ROBUST: sensitivity of the optimal plan to platform mis-estimation — an
// extension beyond the paper's exactly-known-platform model.  For each
// noise band ε, the plan computed on the *believed* platform is re-timed on
// the *actual* (perturbed) platform and compared to re-planning.

#include <iostream>

#include "mst/analysis/robustness.hpp"
#include "mst/common/cli.hpp"
#include "mst/common/stats.hpp"
#include "mst/common/table.hpp"
#include "mst/platform/generator.hpp"

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 40));
  const auto n = static_cast<std::size_t>(args.get_int("n", 20));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 99));

  std::cout << "ROBUST — stale plan vs re-planning under platform noise\n"
            << "(" << trials << " random platforms per cell, n=" << n
            << " tasks; degradation = stale makespan / optimal makespan)\n\n";

  Table table({"shape", "class", "noise ±ε", "mean degr.", "p95 degr.", "max degr."});

  const double epsilons[] = {0.1, 0.25, 0.5};
  for (PlatformClass cls : {PlatformClass::kUniform, PlatformClass::kAntiCorrelated}) {
    for (double eps : epsilons) {
      Sample chain_degr;
      Sample spider_degr;
      Rng rng(seed);
      for (int t = 0; t < trials; ++t) {
        GeneratorParams params{2, 12, cls};
        Rng inst = rng.split();
        const Chain believed_chain = random_chain(inst, 4, params);
        const Chain actual_chain = perturb(believed_chain, eps, rng);
        chain_degr.add(evaluate_stale_plan(believed_chain, actual_chain, n).degradation());

        Rng sinst = rng.split();
        const Spider believed_spider = random_spider(sinst, 3, 2, params);
        const Spider actual_spider = perturb(believed_spider, eps, rng);
        spider_degr.add(evaluate_stale_plan(believed_spider, actual_spider, n).degradation());
      }
      table.row()
          .cell("chain")
          .cell(to_string(cls))
          .cell(eps, 2)
          .cell(chain_degr.mean(), 3)
          .cell(chain_degr.quantile(0.95), 3)
          .cell(chain_degr.max(), 3);
      table.row()
          .cell("spider")
          .cell(to_string(cls))
          .cell(eps, 2)
          .cell(spider_degr.mean(), 3)
          .cell(spider_degr.quantile(0.95), 3)
          .cell(spider_degr.max(), 3);
    }
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: degradation >= 1.000 always (re-planning is optimal by\n"
               "Theorems 1/3); it grows with ε, and anti-correlated platforms are the\n"
               "most sensitive — mis-ranking a fast-link/slow-cpu node is costly.\n";
  return 0;
}
