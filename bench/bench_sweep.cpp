// SWEEP: end-to-end scenario-runner benchmarks — the batched work-stealing
// executor (same-platform batches, one warm SolveScratch per worker)
// against the historical per-cell stealing with no scratch
// (`RunOptions::batch = false`), plus scratch-vs-fresh micro rows for one
// materialized solve.  Results are bit-identical in every configuration
// (pinned by tests/test_zero_alloc.cpp and the CI thread-count diffs);
// only wall time moves.  Timing harness shared with the other bench_*
// binaries: bench/bench_harness.hpp; the committed baseline is
// bench/BENCH_sweep.json.

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "bench_harness.hpp"
#include "mst/api/registry.hpp"
#include "mst/api/solve_scratch.hpp"
#include "mst/common/rng.hpp"
#include "mst/platform/generator.hpp"
#include "mst/scenario/runner.hpp"

namespace {

using mst::bench::Row;
using mst::bench::keep;
using mst::bench::time_op;

/// A multi-platform × tasks-axis grid, hand-built so the bench controls
/// batch shape exactly: every platform contributes one same-platform batch
/// of `kTasksAxis` solve cells.
const std::size_t kTasksAxis[] = {64, 128, 256, 512};

void add_cells(std::vector<mst::scenario::Cell>& cells,
               std::shared_ptr<const mst::api::Platform> platform, const char* kind,
               const char* algorithm, const std::size_t* tasks_axis, std::size_t axis_len) {
  for (std::size_t t = 0; t < axis_len; ++t) {
    mst::scenario::Cell cell;
    cell.index = cells.size();
    cell.spec_name = "bench";
    cell.platform = platform;
    cell.kind = kind;
    cell.cls = "uniform";
    cell.size = mst::api::num_processors(*platform);
    cell.algorithm = algorithm;
    cell.mode = mst::scenario::CellMode::kSolve;
    cell.n = tasks_axis[t];
    cell.seed = 1;
    cells.push_back(std::move(cell));
  }
}

std::vector<mst::scenario::Cell> make_grid() {
  const mst::GeneratorParams params{1, 10, mst::PlatformClass::kUniform};
  std::vector<mst::scenario::Cell> cells;
  for (std::uint64_t i = 0; i < 2; ++i) {
    mst::Rng chain_rng(0x5EED0 + i);
    auto chain = std::make_shared<const mst::api::Platform>(
        mst::random_chain(chain_rng, 12, params));
    add_cells(cells, chain, "chain", "optimal", kTasksAxis, 4);

    mst::Rng fork_rng(0x5EED4 + i);
    auto fork =
        std::make_shared<const mst::api::Platform>(mst::random_fork(fork_rng, 12, params));
    add_cells(cells, fork, "fork", "optimal", kTasksAxis, 4);

    mst::Rng spider_rng(0x5EED8 + i);
    auto spider = std::make_shared<const mst::api::Platform>(
        mst::random_spider(spider_rng, 6, 3, params));
    add_cells(cells, spider, "spider", "optimal", kTasksAxis, 4);
  }
  mst::Rng tree_rng(0x5EEDC);
  auto tree =
      std::make_shared<const mst::api::Platform>(mst::random_tree(tree_rng, 10, params));
  const std::size_t tree_axis[] = {64, 128};
  add_cells(cells, tree, "tree", "spider-cover", tree_axis, 2);
  add_cells(cells, tree, "tree", "forward-greedy", tree_axis, 2);
  return cells;
}

double grid_ns(const std::vector<mst::scenario::Cell>& cells, unsigned threads, bool batch) {
  mst::scenario::RunOptions options;
  options.threads = threads;
  options.materialize = true;
  options.reps = 2;
  options.batch = batch;
  return time_op([&] { keep(mst::scenario::run_cells(cells, options)); });
}

std::vector<Row> run_all() {
  const mst::api::Registry& reg = mst::api::registry();
  std::vector<Row> rows;

  // End-to-end: the same grid through the batched executor and the
  // unbatched seed behaviour, single- and multi-threaded.  `n` records the
  // thread count.
  const std::vector<mst::scenario::Cell> cells = make_grid();
  rows.push_back({"sweep_batched", 1, grid_ns(cells, 1, true)});
  rows.push_back({"sweep_unbatched", 1, grid_ns(cells, 1, false)});
  rows.push_back({"sweep_batched", 4, grid_ns(cells, 4, true)});
  rows.push_back({"sweep_unbatched", 4, grid_ns(cells, 4, false)});

  // Micro: one materialized solve, warm scratch vs fresh allocations.
  mst::Rng rng(0x5EED);
  const mst::GeneratorParams params{1, 10, mst::PlatformClass::kUniform};
  const mst::api::Platform chain(mst::random_chain(rng, 12, params));
  const mst::api::Platform spider(mst::random_spider(rng, 6, 3, params));
  const std::size_t n = 1024;
  mst::api::SolveScratch scratch;
  mst::api::SolveOptions with_scratch;
  with_scratch.scratch = &scratch;
  rows.push_back({"chain_solve_scratch", n, time_op([&] {
                    auto result = reg.solve(chain, "optimal", n, with_scratch);
                    keep(result);
                    scratch.recycle(std::move(result));
                  })});
  rows.push_back({"chain_solve_fresh", n, time_op([&] {
                    keep(reg.solve(chain, "optimal", n, {}));
                  })});
  rows.push_back({"spider_solve_scratch", n, time_op([&] {
                    auto result = reg.solve(spider, "optimal", n, with_scratch);
                    keep(result);
                    scratch.recycle(std::move(result));
                  })});
  rows.push_back({"spider_solve_fresh", n, time_op([&] {
                    keep(reg.solve(spider, "optimal", n, {}));
                  })});
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  return mst::bench::bench_main(argc, argv, "bench_sweep", run_all);
}
