// FIG2: regenerates the paper's Figure 2 — the worked schedule on the
// 2-processor chain c=(2,3), w=(3,5) with 5 tasks.  Both the optimal
// construction and the exhaustive oracle are dispatched through the
// algorithm registry (the same path `mstctl` and the sweep runner take);
// the equivalent declarative sweep ships as tests/data/specs/fig2_chain.spec.
//
// Expected (paper): makespan 14; first-link emissions {0,2,4,6,9}; one task
// on the second processor (the one emitted at time 4); the task emitted at
// time 2 arrives at 4 and is buffered until 5 — the dashed "delayed task".

#include <iostream>
#include <variant>

#include "mst/api/registry.hpp"
#include "mst/common/table.hpp"
#include "mst/schedule/gantt.hpp"

int main() {
  using namespace mst;
  const api::Platform chain_platform = Chain::from_vectors({2, 3}, {3, 5});
  const Chain& chain = std::get<Chain>(chain_platform);
  const std::size_t n = 5;

  std::cout << "FIG2 — the paper's worked example\n";
  std::cout << "platform: " << chain.describe() << ", n=" << n << "\n\n";

  const api::SolveResult result = api::registry().solve(chain_platform, "optimal", n);
  const ChainSchedule& s = std::get<ChainSchedule>(result.schedule);
  Table table({"task", "dest proc (1-based)", "emissions C(i)", "start T(i)", "end"});
  for (std::size_t i = 0; i < s.tasks.size(); ++i) {
    const ChainTask& t = s.tasks[i];
    table.row()
        .cell(i + 1)
        .cell(t.proc + 1)
        .cell(to_string(t.emissions))
        .cell(t.start)
        .cell(t.end(chain));
  }
  table.print(std::cout);

  std::cout << "\nGantt (paper's drawing, one column per time unit):\n"
            << render_gantt(s) << '\n';

  const Time bf = api::registry().solve(chain_platform, "brute-force", n).makespan;
  const bool feasible = api::check_feasibility(result).ok();
  std::cout << "makespan (algorithm)    : " << result.makespan << '\n';
  std::cout << "makespan (paper)        : 14\n";
  std::cout << "makespan (brute force)  : " << bf << '\n';
  std::cout << "feasible (Definition 1) : " << (feasible ? "yes" : "NO") << '\n';
  std::cout << "buffered task           : task 2 arrives at "
            << s.tasks[1].arrival(chain) << ", starts at " << s.tasks[1].start
            << " (the dashed curve of Fig 2)\n";

  const bool ok = result.makespan == 14 && bf == 14 && feasible;
  std::cout << (ok ? "\nRESULT: reproduces the paper exactly\n"
                   : "\nRESULT: MISMATCH with the paper\n");
  return ok ? 0 : 1;
}
