// FIG6: regenerates the paper's Figure 6 — expansion of a single fork slave
// (c_i, w_i) into virtual single-task nodes with processing times
// w_i, w_i + m_i, w_i + 2·m_i, … where m_i = max(c_i, w_i).

#include <iostream>

#include "mst/common/table.hpp"
#include "mst/core/virtual_nodes.hpp"

int main() {
  using namespace mst;
  std::cout << "FIG6 — virtual single-task-node expansion of a fork slave\n\n";

  struct Case {
    Processor slave;
    Time t_lim;
    const char* regime;
  };
  const Case cases[] = {
      {{2, 5}, 24, "compute-bound (m = w = 5)"},
      {{5, 2}, 24, "link-bound (m = c = 5)"},
      {{4, 4}, 24, "balanced (m = 4)"},
  };

  for (const Case& c : cases) {
    std::cout << "slave (c=" << c.slave.comm << ", w=" << c.slave.work << "), T_lim=" << c.t_lim
              << " — " << c.regime << '\n';
    Table table({"virtual node rank q", "processing time w+q*m", "emission deadline T_lim-exec"});
    for (const VirtualNode& node : expand_fork_slave(c.slave, 0, c.t_lim, 16)) {
      table.row().cell(node.rank).cell(node.exec).cell(node.deadline(c.t_lim));
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Paper's reading: selecting the rank-q node means \"this slave runs q+1\n"
               "tasks\"; the node's processing time reserves room for the whole suffix\n"
               "of tasks behind it, whether the slave is compute- or link-bound.\n";
  return 0;
}
