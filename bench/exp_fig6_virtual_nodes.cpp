// FIG6: regenerates the paper's Figure 6 — expansion of a single fork slave
// (c_i, w_i) into virtual single-task nodes with processing times
// w_i, w_i + m_i, w_i + 2·m_i, … where m_i = max(c_i, w_i).
//
// The expansion is cross-checked against the registry's decision form: the
// rank-q node exists iff q+1 tasks fit on the slave within T_lim, so the
// node count must equal `max_tasks` of the single-slave fork.

#include <iostream>

#include "mst/api/registry.hpp"
#include "mst/common/table.hpp"
#include "mst/core/virtual_nodes.hpp"

int main() {
  using namespace mst;
  std::cout << "FIG6 — virtual single-task-node expansion of a fork slave\n\n";

  struct Case {
    Processor slave;
    Time t_lim;
    const char* regime;
  };
  const Case cases[] = {
      {{2, 5}, 24, "compute-bound (m = w = 5)"},
      {{5, 2}, 24, "link-bound (m = c = 5)"},
      {{4, 4}, 24, "balanced (m = 4)"},
  };

  bool consistent = true;
  for (const Case& c : cases) {
    std::cout << "slave (c=" << c.slave.comm << ", w=" << c.slave.work << "), T_lim=" << c.t_lim
              << " — " << c.regime << '\n';
    const std::vector<VirtualNode> nodes = expand_fork_slave(c.slave, 0, c.t_lim, 16);
    Table table({"virtual node rank q", "processing time w+q*m", "emission deadline T_lim-exec"});
    for (const VirtualNode& node : nodes) {
      table.row().cell(node.rank).cell(node.exec).cell(node.deadline(c.t_lim));
    }
    table.print(std::cout);

    // Registry cross-check: "rank q selected" means "q+1 tasks on this
    // slave", so the feasible node count is exactly the optimal task count
    // of the one-slave fork within the window.
    const api::Platform fork = Fork{{c.slave}};
    const std::size_t max_tasks = api::registry().max_tasks(fork, "optimal", c.t_lim);
    std::cout << "registry max-tasks within T_lim: " << max_tasks
              << (max_tasks == nodes.size() ? "  (= node count)" : "  (MISMATCH)") << "\n\n";
    consistent = consistent && max_tasks == nodes.size();
  }

  std::cout << "Paper's reading: selecting the rank-q node means \"this slave runs q+1\n"
               "tasks\"; the node's processing time reserves room for the whole suffix\n"
               "of tasks behind it, whether the slave is compute- or link-bound.\n";
  std::cout << (consistent ? "RESULT: expansion agrees with the registry decision form\n"
                           : "RESULT: MISMATCH with the registry decision form\n");
  return consistent ? 0 : 1;
}
