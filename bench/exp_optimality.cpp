// OPT-CHAIN / OPT-SPIDER: executable Theorems 1 and 3 — the schedulers must
// match the exhaustive optimum on every instance of a randomized sweep, for
// every platform class.  The paper proves optimality; this table measures it
// (gap counts must all be zero).

#include <iostream>

#include "mst/baselines/brute_force.hpp"
#include "mst/common/cli.hpp"
#include "mst/common/rng.hpp"
#include "mst/common/table.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/platform/generator.hpp"
#include "mst/schedule/feasibility.hpp"

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const auto trials = static_cast<int>(args.get_int("trials", 60));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 20030422));

  std::cout << "OPT — optimality of the chain (Theorem 1) and spider (Theorem 3)\n"
            << "algorithms against exhaustive search; " << trials
            << " instances per class and shape.\n\n";

  Table table({"class", "shape", "instances", "optimal", "infeasible", "max gap"});
  bool all_ok = true;

  for (PlatformClass cls : all_platform_classes()) {
    GeneratorParams params{1, 9, cls};

    // Chains.
    {
      Rng rng(seed);
      int optimal = 0;
      int infeasible = 0;
      Time max_gap = 0;
      for (int t = 0; t < trials; ++t) {
        Rng inst = rng.split();
        const auto p = static_cast<std::size_t>(rng.uniform(1, 4));
        const auto n = static_cast<std::size_t>(rng.uniform(1, 7));
        const Chain chain = random_chain(inst, p, params);
        const ChainSchedule s = ChainScheduler::schedule(chain, n);
        if (!check_feasibility(s).ok()) ++infeasible;
        const Time gap = s.makespan() - brute_force_chain_makespan(chain, n);
        if (gap == 0) ++optimal;
        max_gap = std::max(max_gap, gap);
      }
      table.row()
          .cell(to_string(cls))
          .cell("chain")
          .cell(trials)
          .cell(optimal)
          .cell(infeasible)
          .cell(max_gap);
      all_ok = all_ok && optimal == trials && infeasible == 0;
    }

    // Spiders.
    {
      Rng rng(seed + 1);
      int optimal = 0;
      int infeasible = 0;
      Time max_gap = 0;
      for (int t = 0; t < trials; ++t) {
        Rng inst = rng.split();
        const auto legs = static_cast<std::size_t>(rng.uniform(1, 3));
        const auto n = static_cast<std::size_t>(rng.uniform(1, 6));
        const Spider spider = random_spider(inst, legs, 2, params);
        const SpiderSchedule s = SpiderScheduler::schedule(spider, n);
        if (!check_feasibility(s).ok()) ++infeasible;
        const Time gap = s.makespan() - brute_force_spider_makespan(spider, n);
        if (gap == 0) ++optimal;
        max_gap = std::max(max_gap, gap);
      }
      table.row()
          .cell(to_string(cls))
          .cell("spider")
          .cell(trials)
          .cell(optimal)
          .cell(infeasible)
          .cell(max_gap);
      all_ok = all_ok && optimal == trials && infeasible == 0;
    }
  }

  table.print(std::cout);
  std::cout << (all_ok ? "\nRESULT: zero optimality gap everywhere (Theorems 1 and 3 hold)\n"
                       : "\nRESULT: OPTIMALITY VIOLATION FOUND\n");
  return all_ok ? 0 : 1;
}
