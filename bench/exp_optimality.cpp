// OPT-CHAIN / OPT-SPIDER: executable Theorems 1 and 3 — the schedulers must
// match the exhaustive optimum on every instance of a randomized sweep, for
// every platform class.  The paper proves optimality; this table measures it
// (gap counts must all be zero).
//
// The grid is a declarative scenario sweep (tests/data/specs/optimality.spec
// is the same grid for `mstctl --mode=sweep`): every cell runs `optimal` and
// `brute-force` through the registry on the parallel runner with
// materialized, feasibility-checked schedules, and this driver reduces the
// long-form outcomes to the per-class gap table.

#include <iostream>
#include <map>
#include <tuple>

#include "mst/common/cli.hpp"
#include "mst/common/table.hpp"
#include "mst/scenario/report.hpp"
#include "mst/scenario/runner.hpp"
#include "mst/scenario/spec.hpp"

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const auto instances = static_cast<std::size_t>(args.get_int("instances", 5));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 20030422));

  scenario::SweepSpec spec;
  spec.name = "optimality";
  spec.seed = seed;
  spec.kinds = {api::PlatformKind::kChain, api::PlatformKind::kSpider};
  spec.classes = all_platform_classes();
  spec.sizes = {1, 2, 3};  // chain processors / spider legs
  spec.instances = instances;
  spec.lo = 1;
  spec.hi = 9;
  spec.min_leg_len = 1;
  spec.max_leg_len = 2;
  spec.tasks = {1, 3, 5, 6};
  spec.algorithms = {"optimal", "brute-force"};

  scenario::RunOptions run;
  run.threads = static_cast<unsigned>(args.get_int("threads", 0));  // 0 = all cores
  run.materialize = true;
  run.check = true;

  std::cout << "OPT — optimality of the chain (Theorem 1) and spider (Theorem 3)\n"
            << "algorithms against exhaustive search; " << instances
            << " instances per class, size and task count, via the scenario runner.\n\n";

  const std::vector<scenario::CellOutcome> outcomes = scenario::run_sweep(spec, run);

  // Join each instance's two algorithms, then reduce per (class, shape).
  using InstanceKey = std::tuple<std::string, std::string, std::size_t, std::size_t,
                                 std::size_t>;  // (kind, class, size, instance, n)
  struct Pair {
    Time optimal = -1;
    Time oracle = -1;
    bool infeasible = false;
  };
  std::map<InstanceKey, Pair> pairs;
  for (const scenario::CellOutcome& out : outcomes) {
    const scenario::Cell& cell = out.cell;
    Pair& pair = pairs[{cell.kind, cell.cls, cell.size, cell.instance, cell.n}];
    if (cell.algorithm == "optimal") {
      pair.optimal = out.makespan;
    } else {
      pair.oracle = out.makespan;
    }
    pair.infeasible = pair.infeasible || !out.ok();
  }

  struct CellStats {
    int instances = 0;
    int optimal = 0;
    int infeasible = 0;
    Time max_gap = 0;
  };
  std::map<std::pair<std::string, std::string>, CellStats> stats;  // (class, kind)
  for (const auto& [key, pair] : pairs) {
    CellStats& s = stats[{std::get<1>(key), std::get<0>(key)}];
    ++s.instances;
    const Time gap = pair.optimal - pair.oracle;
    if (gap == 0) ++s.optimal;
    if (pair.infeasible) ++s.infeasible;
    s.max_gap = std::max(s.max_gap, gap);
  }

  Table table({"class", "shape", "instances", "optimal", "infeasible", "max gap"});
  bool all_ok = true;
  for (PlatformClass cls : all_platform_classes()) {
    for (const char* shape : {"chain", "spider"}) {
      const CellStats& s = stats[{to_string(cls), shape}];
      table.row()
          .cell(to_string(cls))
          .cell(shape)
          .cell(s.instances)
          .cell(s.optimal)
          .cell(s.infeasible)
          .cell(s.max_gap);
      all_ok = all_ok && s.optimal == s.instances && s.infeasible == 0;
    }
  }

  table.print(std::cout);
  std::cout << (all_ok ? "\nRESULT: zero optimality gap everywhere (Theorems 1 and 3 hold)\n"
                       : "\nRESULT: OPTIMALITY VIOLATION FOUND\n");
  return all_ok ? 0 : 1;
}
