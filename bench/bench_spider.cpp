// CPLX-SPIDER: microbenchmarks of the spider algorithm (Theorem 2 claims a
// polynomial bound below O(n²p²)) — decision form, makespan n-sweep and the
// spider→chains transformation.  Timing harness shared with the other
// bench_* binaries: bench/bench_harness.hpp; the committed baseline is
// bench/BENCH_spider.json.

#include <cstddef>
#include <utility>
#include <vector>

#include "bench_harness.hpp"
#include "mst/common/rng.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/platform/generator.hpp"

namespace {

using mst::bench::Row;
using mst::bench::keep;
using mst::bench::time_op;

mst::Spider make_spider(std::size_t legs, std::size_t leg_len) {
  mst::Rng rng(0x591D3 + legs * 131 + leg_len);
  mst::GeneratorParams params{1, 10, mst::PlatformClass::kUniform};
  std::vector<mst::Chain> chains;
  for (std::size_t l = 0; l < legs; ++l) {
    chains.push_back(mst::random_chain(rng, leg_len, params));
  }
  return mst::Spider(std::move(chains));
}

std::vector<Row> run_all() {
  std::vector<Row> rows;

  for (std::size_t legs = 2; legs <= 32; legs *= 2) {
    const mst::Spider spider = make_spider(legs, 4);
    rows.push_back({"spider_decision_form", legs, time_op([&] {
                      keep(mst::SpiderScheduler::max_tasks(spider, 1000, 512));
                    })});
  }
  {
    const mst::Spider spider6 = make_spider(6, 3);
    for (std::size_t n = 16; n <= 512; n *= 2) {
      rows.push_back({"spider_makespan_tasks", n, time_op([&] {
                        keep(mst::SpiderScheduler::makespan(spider6, n));
                      })});
    }
  }
  for (std::size_t legs = 2; legs <= 32; legs *= 2) {
    const mst::Spider spider = make_spider(legs, 4);
    rows.push_back({"spider_transformation", legs, time_op([&] {
                      keep(mst::SpiderScheduler::transform(spider, 1000, 512));
                    })});
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  return mst::bench::bench_main(argc, argv, "bench_spider", run_all);
}
