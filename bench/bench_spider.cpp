// CPLX-SPIDER: microbenchmarks of the spider algorithm (Theorem 2 claims a
// polynomial bound below O(n²p²)).

#include <benchmark/benchmark.h>

#include <cstdint>

#include "mst/common/rng.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/platform/generator.hpp"

namespace {

mst::Spider make_spider(std::size_t legs, std::size_t leg_len) {
  mst::Rng rng(0x591D3 + legs * 131 + leg_len);
  mst::GeneratorParams params{1, 10, mst::PlatformClass::kUniform};
  std::vector<mst::Chain> chains;
  for (std::size_t l = 0; l < legs; ++l) chains.push_back(mst::random_chain(rng, leg_len, params));
  return mst::Spider(std::move(chains));
}

void BM_SpiderDecisionForm(benchmark::State& state) {
  const auto legs = static_cast<std::size_t>(state.range(0));
  const mst::Spider spider = make_spider(legs, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mst::SpiderScheduler::max_tasks(spider, 1000, 512));
  }
}
BENCHMARK(BM_SpiderDecisionForm)->RangeMultiplier(2)->Range(2, 32);

void BM_SpiderMakespanTasksSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const mst::Spider spider = make_spider(6, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mst::SpiderScheduler::makespan(spider, n));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SpiderMakespanTasksSweep)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void BM_SpiderTransformation(benchmark::State& state) {
  const auto legs = static_cast<std::size_t>(state.range(0));
  const mst::Spider spider = make_spider(legs, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mst::SpiderScheduler::transform(spider, 1000, 512));
  }
}
BENCHMARK(BM_SpiderTransformation)->RangeMultiplier(2)->Range(2, 32);

}  // namespace
