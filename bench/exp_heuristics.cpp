// HEUR: the evaluation the paper motivates but does not tabulate — how much
// does the optimal construction win over what deployed master-worker
// systems do?  Reports mean/max makespan ratios (heuristic / optimal) per
// platform class, for offline heuristics and online (simulated) policies.

#include <iostream>

#include "mst/baselines/forward_greedy.hpp"
#include "mst/baselines/round_robin.hpp"
#include "mst/baselines/single_node.hpp"
#include "mst/common/cli.hpp"
#include "mst/common/rng.hpp"
#include "mst/common/stats.hpp"
#include "mst/common/table.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/platform/generator.hpp"
#include "mst/sim/online.hpp"

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 40));
  const auto n = static_cast<std::size_t>(args.get_int("n", 24));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  std::cout << "HEUR — makespan ratio vs the optimal spider schedule\n"
            << "(" << trials << " random spiders per class, n=" << n
            << " tasks; ratio 1.000 = optimal)\n\n";

  Table table({"class", "heuristic", "mean ratio", "p95 ratio", "max ratio"});

  for (PlatformClass cls : all_platform_classes()) {
    GeneratorParams params{1, 10, cls};
    Sample greedy_r;
    Sample rr_r;
    Sample single_r;
    Sample ect_r;
    Sample jsq_r;
    Sample random_r;

    Rng rng(seed);
    for (int t = 0; t < trials; ++t) {
      Rng inst = rng.split();
      const auto legs = static_cast<std::size_t>(rng.uniform(2, 5));
      const Spider spider = random_spider(inst, legs, 3, params);
      const auto optimal = static_cast<double>(SpiderScheduler::makespan(spider, n));
      const Tree tree = tree_from_spider(spider);

      greedy_r.add(static_cast<double>(forward_greedy_spider_makespan(spider, n)) / optimal);
      rr_r.add(static_cast<double>(round_robin_spider_makespan(spider, n)) / optimal);
      single_r.add(static_cast<double>(single_node_spider_makespan(spider, n)) / optimal);
      ect_r.add(static_cast<double>(
                    sim::simulate_online(tree, n, sim::OnlinePolicy::kEarliestCompletion, 1)
                        .makespan) /
                optimal);
      jsq_r.add(static_cast<double>(
                    sim::simulate_online(tree, n, sim::OnlinePolicy::kJoinShortestQueue, 1)
                        .makespan) /
                optimal);
      random_r.add(
          static_cast<double>(sim::simulate_online(tree, n, sim::OnlinePolicy::kRandom,
                                                   static_cast<std::uint64_t>(t))
                                  .makespan) /
          optimal);
    }

    const struct {
      const char* name;
      const Sample* sample;
    } rows[] = {
        {"forward greedy (ECT, offline)", &greedy_r}, {"ECT (online sim)", &ect_r},
        {"JSQ (online sim)", &jsq_r},                 {"round-robin", &rr_r},
        {"random (online sim)", &random_r},           {"best single node", &single_r},
    };
    for (const auto& row : rows) {
      table.row()
          .cell(to_string(cls))
          .cell(row.name)
          .cell(row.sample->mean(), 3)
          .cell(row.sample->quantile(0.95), 3)
          .cell(row.sample->max(), 3);
    }
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: every ratio >= 1.  Heterogeneity-blind policies\n"
               "(round-robin, random) degrade hardest on correlated platforms, where\n"
               "they keep feeding the slow-link/slow-cpu nodes; greedy lookahead (ECT)\n"
               "closes most of that gap.  Anti-correlated platforms (fast links into\n"
               "slow processors) defeat even greedy lookahead — only the backward\n"
               "construction stays optimal there.\n";
  return 0;
}
