// HEUR: the evaluation the paper motivates but does not tabulate — how much
// does the optimal construction win over what deployed master-worker
// systems do?  Reports mean/max makespan ratios (heuristic / optimal) per
// platform class.  Every contender is resolved through the algorithm
// registry: offline spider heuristics run on the spider itself, tree
// heuristics and simulated online policies run on its tree embedding, so a
// newly registered algorithm joins this table with no changes here.

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "mst/api/registry.hpp"
#include "mst/common/cli.hpp"
#include "mst/common/rng.hpp"
#include "mst/common/stats.hpp"
#include "mst/common/table.hpp"
#include "mst/platform/generator.hpp"

namespace {

struct Contender {
  mst::api::PlatformKind kind;
  std::string name;
  std::string key;  ///< "kind/name", the Sample accumulator key
};

/// Every registered non-optimal, polynomial spider and tree algorithm.
std::vector<Contender> contenders() {
  using mst::api::PlatformKind;
  std::vector<Contender> out;
  for (PlatformKind kind : {PlatformKind::kSpider, PlatformKind::kTree}) {
    for (const mst::api::AlgorithmInfo& info : mst::api::registry().list(kind)) {
      if (info.optimal || info.exponential) continue;
      out.push_back({kind, info.name, to_string(kind) + "/" + info.name});
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 40));
  if (trials < 1) {
    std::cerr << "--trials must be >= 1\n";
    return 2;
  }
  const auto n = static_cast<std::size_t>(args.get_int("n", 24));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  std::cout << "HEUR — makespan ratio vs the optimal spider schedule\n"
            << "(" << trials << " random spiders per class, n=" << n
            << " tasks; ratio 1.000 = optimal; online-* are simulated\n"
            << "no-lookahead policies on the tree embedding)\n\n";

  const std::vector<Contender> algos = contenders();
  Table table({"class", "kind", "algorithm", "mean ratio", "p95 ratio", "max ratio"});

  for (PlatformClass cls : all_platform_classes()) {
    GeneratorParams params{1, 10, cls};
    std::map<std::string, Sample> ratios;

    Rng rng(seed);
    for (int t = 0; t < trials; ++t) {
      Rng inst = rng.split();
      const auto legs = static_cast<std::size_t>(rng.uniform(2, 5));
      const Spider spider = random_spider(inst, legs, 3, params);
      const api::Platform spider_platform = spider;
      const api::Platform tree_platform = tree_from_spider(spider);
      const auto optimal =
          static_cast<double>(api::registry().solve(spider_platform, "optimal", n).makespan);

      for (const Contender& algo : algos) {
        const api::Platform& platform =
            algo.kind == api::PlatformKind::kSpider ? spider_platform : tree_platform;
        const api::SolveResult result = api::registry().solve(platform, algo.name, n);
        ratios[algo.key].add(static_cast<double>(result.makespan) / optimal);
      }
    }

    for (const Contender& algo : algos) {
      const Sample& sample = ratios.at(algo.key);
      table.row()
          .cell(to_string(cls))
          .cell(to_string(algo.kind))
          .cell(algo.name)
          .cell(sample.mean(), 3)
          .cell(sample.quantile(0.95), 3)
          .cell(sample.max(), 3);
    }
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: every ratio >= 1 (spider-cover on a spider-shaped tree\n"
               "replays the optimal plan, so it sits at 1.000).  Heterogeneity-blind\n"
               "policies (round-robin) degrade hardest on correlated platforms, where\n"
               "they keep feeding the slow-link/slow-cpu nodes; greedy lookahead\n"
               "(forward-greedy, online-ect) closes most of that gap.  Anti-correlated\n"
               "platforms (fast links into slow processors) defeat even greedy\n"
               "lookahead — only the backward construction stays optimal there.\n";
  return 0;
}
