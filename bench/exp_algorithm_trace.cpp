// TRACE: replay of the paper's §3 construction on the Fig 2 instance,
// decision by decision — the hull/occupancy bookkeeping and the p candidate
// communication vectors of every backward step, exactly as Fig 3's
// pseudo-code manipulates them.

#include <iostream>

#include "mst/api/registry.hpp"
#include "mst/common/table.hpp"
#include "mst/core/chain_trace.hpp"
#include "mst/schedule/gantt.hpp"

int main() {
  using namespace mst;
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  const std::size_t n = 5;

  std::cout << "TRACE — backward construction on " << chain.describe() << ", n=" << n << "\n";
  const ChainTrace trace = trace_schedule(chain, n);
  std::cout << "horizon T∞ = " << trace.horizon << " (= c1 + (n-1)·max(w1,c1) + w1)\n\n";

  for (std::size_t s = 0; s < trace.steps.size(); ++s) {
    const ChainTraceStep& step = trace.steps[s];
    std::cout << "step " << s + 1 << " (places task " << n - s << " of the final order):\n";

    Table table({"quantity", "link/proc 1", "link/proc 2"});
    auto row_of = [&table](const char* name, const std::vector<Time>& v) {
      auto& r = table.row().cell(name);
      for (Time t : v) r.cell(t);
    };
    row_of("hull h", step.hull_before);
    row_of("occupancy o", step.occupancy_before);
    table.print(std::cout);

    for (std::size_t k = 0; k < step.candidates.size(); ++k) {
      std::cout << "  candidate " << k + 1 << "C = " << to_string(step.candidates[k])
                << (k == step.chosen ? "   <-- greatest (Def. 3)" : "") << "\n";
    }
    std::cout << "  => place on processor " << step.chosen + 1 << ", start T = "
              << step.placed.start << ", C = " << to_string(step.placed.emissions) << "\n\n";
  }

  std::cout << "final schedule after the -C^1_1 shift (makespan "
            << trace.schedule.makespan() << "):\n"
            << render_gantt(trace.schedule);

  // The traced replay must land on the same optimum the registry's entry
  // produces — the trace exists to explain that algorithm, not to fork it.
  const Time registry_makespan = api::registry().solve(Chain{chain}, "optimal", n).makespan;
  const bool ok = trace.schedule.makespan() == registry_makespan;
  std::cout << "registry makespan: " << registry_makespan
            << (ok ? "  (matches the trace)\n" : "  (MISMATCH)\n");
  return ok ? 0 : 1;
}
