// Microbenchmarks of the simulator substrate: event engine throughput,
// store-and-forward dispatch and static replay.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "mst/common/rng.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/platform/generator.hpp"
#include "mst/sim/engine.hpp"
#include "mst/sim/online.hpp"
#include "mst/sim/platform_sim.hpp"
#include "mst/sim/static_replay.hpp"

namespace {

void BM_EngineEventThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    mst::sim::Engine engine;
    for (std::size_t i = 0; i < n; ++i) {
      engine.at(static_cast<mst::Time>(i % 97), [] {});
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EngineEventThroughput)->RangeMultiplier(4)->Range(1024, 65536);

void BM_SimulateOnlineEct(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mst::Rng rng(0x51D);
  const mst::Tree tree = mst::random_tree(rng, 24, {1, 10, mst::PlatformClass::kUniform});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mst::sim::simulate_online(tree, n, mst::sim::OnlinePolicy::kEarliestCompletion, 1));
  }
}
BENCHMARK(BM_SimulateOnlineEct)->RangeMultiplier(4)->Range(64, 1024);

void BM_StaticReplayChain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mst::Rng rng(0x9E91A);
  const mst::Chain chain = mst::random_chain(rng, 12, {1, 10, mst::PlatformClass::kUniform});
  const mst::ChainSchedule s = mst::ChainScheduler::schedule(chain, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mst::sim::replay(s));
  }
}
BENCHMARK(BM_StaticReplayChain)->RangeMultiplier(4)->Range(64, 1024);

}  // namespace
