// CPLX-SIM: microbenchmarks of the simulator substrate — event engine
// throughput, online store-and-forward dispatch and static replay.  Timing
// harness shared with the other bench_* binaries: bench/bench_harness.hpp;
// the committed baseline is bench/BENCH_sim.json.

#include <cstddef>
#include <vector>

#include "bench_harness.hpp"
#include "mst/common/rng.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/platform/generator.hpp"
#include "mst/sim/engine.hpp"
#include "mst/sim/online.hpp"
#include "mst/sim/static_replay.hpp"

namespace {

using mst::bench::Row;
using mst::bench::keep;
using mst::bench::time_op;

std::vector<Row> run_all() {
  std::vector<Row> rows;

  for (std::size_t n = 1024; n <= 65536; n *= 4) {
    rows.push_back({"engine_event_throughput", n, time_op([&] {
                      mst::sim::Engine engine;
                      for (std::size_t i = 0; i < n; ++i) {
                        engine.at(static_cast<mst::Time>(i % 97), [] {});
                      }
                      keep(engine.run());
                    })});
  }
  {
    mst::Rng rng(0x51D);
    const mst::Tree tree = mst::random_tree(rng, 24, {1, 10, mst::PlatformClass::kUniform});
    for (std::size_t n = 64; n <= 1024; n *= 4) {
      rows.push_back({"simulate_online_ect", n, time_op([&] {
                        keep(mst::sim::simulate_online(
                            tree, n, mst::sim::OnlinePolicy::kEarliestCompletion, 1));
                      })});
    }
  }
  {
    mst::Rng rng(0x9E91A);
    const mst::Chain chain = mst::random_chain(rng, 12, {1, 10, mst::PlatformClass::kUniform});
    for (std::size_t n = 64; n <= 1024; n *= 4) {
      const mst::ChainSchedule s = mst::ChainScheduler::schedule(chain, n);
      rows.push_back({"static_replay_chain", n, time_op([&] { keep(mst::sim::replay(s)); })});
    }
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  return mst::bench::bench_main(argc, argv, "bench_sim", run_all);
}
