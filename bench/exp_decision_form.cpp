// TLIM: the §7 decision form, exercised through the registry.  For every
// exactly-solved family (chain, fork, spider), tasks(T_lim) must be the
// exact inverse staircase of the optimal makespan curve, the registry's
// native decision procedures must agree with the brute-force oracles, and
// the makespan-inversion adapter (used by heuristic entries) must agree
// with its own makespan form.

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "mst/api/registry.hpp"
#include "mst/common/cli.hpp"
#include "mst/common/rng.hpp"
#include "mst/common/table.hpp"
#include "mst/platform/generator.hpp"

namespace {

/// Checks the duality on one platform: for k = 1..k_max the decision form
/// must report >= k tasks at T = makespan(k) and < k tasks just below it;
/// for k <= oracle_max the count must equal the brute-force oracle's.
bool check_duality(const mst::api::Platform& platform, std::size_t k_max,
                   std::size_t oracle_max) {
  using namespace mst;
  api::SolveOptions fast;
  fast.materialize = false;

  std::cout << to_string(api::kind_of(platform)) << ": " << api::describe(platform) << "\n\n";
  Table table({"k", "makespan(k)", "tasks(makespan(k))", "tasks(makespan(k)-1)", "oracle"});
  bool consistent = true;
  for (std::size_t k = 1; k <= k_max; ++k) {
    const Time makespan = api::registry().solve(platform, "optimal", k, fast).makespan;
    const std::size_t at = api::registry().max_tasks(platform, "optimal", makespan);
    const std::size_t below = api::registry().max_tasks(platform, "optimal", makespan - 1);
    std::string oracle = "-";
    if (k <= oracle_max) {
      const std::size_t exact = api::registry().max_tasks(platform, "brute-force", makespan);
      oracle = std::to_string(exact);
      consistent = consistent && at == exact;
    }
    table.row().cell(k).cell(makespan).cell(at).cell(below).cell(oracle);
    consistent = consistent && at >= k && below < k;
  }
  table.print(std::cout);
  std::cout << "\n";
  return consistent;
}

/// The adapter path: a heuristic entry has no native decision form, so the
/// registry inverts its makespan form.  Inverting at exactly T =
/// heuristic_makespan(k) must recover at least k tasks.
bool check_adapter(const mst::api::Platform& platform, const std::string& algorithm,
                   std::size_t k_max) {
  using namespace mst;
  api::SolveOptions fast;
  fast.materialize = false;
  bool consistent = true;
  for (std::size_t k = 1; k <= k_max; ++k) {
    const Time makespan = api::registry().solve(platform, algorithm, k, fast).makespan;
    const std::size_t at = api::registry().max_tasks(platform, algorithm, makespan);
    consistent = consistent && at >= k;
  }
  return consistent;
}

/// Release dates through the same duality: a staggered stream can only ever
/// lower the count of a window, the released duality tasks(T*) >= k must
/// hold at the released makespan T* of every prefix, and an all-zero
/// release vector must reproduce the identical counts exactly.
bool check_release_dates(const mst::api::Platform& platform, std::size_t k_max, mst::Time gap) {
  using namespace mst;
  api::SolveOptions fast;
  fast.materialize = false;

  std::cout << to_string(api::kind_of(platform)) << " + periodic releases (gap " << gap
            << ")\n\n";
  Table table({"k", "makespan(k)", "released makespan", "tasks(released)", "identical tasks"});
  bool consistent = true;
  for (std::size_t k = 1; k <= k_max; ++k) {
    std::vector<Time> releases;
    for (std::size_t i = 0; i < k; ++i) releases.push_back(static_cast<Time>(i) * gap);
    const auto pool = std::make_shared<const Workload>(Workload::released(std::move(releases)));

    const Time identical = api::registry().solve(platform, "optimal", k, fast).makespan;
    const Time released = api::registry().solve(platform, "optimal", *pool, fast).makespan;
    consistent = consistent && released >= identical;

    api::SolveOptions pooled = fast;
    pooled.workload = pool;
    const std::size_t at = api::registry().max_tasks(platform, "optimal", released, pooled);
    consistent = consistent && at >= k;

    // Degenerate pool (all releases 0) must reproduce the identical counts.
    api::SolveOptions zeroed = fast;
    zeroed.workload = std::make_shared<const Workload>(Workload::identical(k));
    const std::size_t plain = api::registry().max_tasks(platform, "optimal", identical, zeroed);
    consistent = consistent && plain == k;

    table.row().cell(k).cell(identical).cell(released).cell(at).cell(plain);
  }
  table.print(std::cout);
  std::cout << "\n";
  return consistent;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 12));

  Rng rng(seed);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  const api::Platform chain = random_chain(rng, 4, params);
  const api::Platform fork = random_fork(rng, 4, params);
  const api::Platform spider = random_spider(rng, 3, 2, params);

  std::cout << "TLIM — decision form tasks(T) vs makespan form, via the registry\n\n";

  constexpr std::size_t kMax = 12;
  constexpr std::size_t kOracleMax = 7;  // brute force stays tractable here
  bool consistent = true;
  for (const api::Platform* platform : {&chain, &fork, &spider}) {
    consistent = consistent && check_duality(*platform, kMax, kOracleMax);
  }

  // Heuristic entries go through the makespan-inversion adapter.
  consistent = consistent && check_adapter(chain, "forward-greedy", kMax);
  consistent = consistent && check_adapter(spider, "round-robin", kMax);

  // The workload layer: native release-date handling on every exactly
  // solved family.
  for (const api::Platform* platform : {&chain, &fork, &spider}) {
    consistent = consistent && check_release_dates(*platform, kMax / 2, /*gap=*/3);
  }

  std::cout << (consistent
                    ? "RESULT: decision and makespan forms are exact duals everywhere\n"
                    : "RESULT: DUALITY VIOLATION\n");
  return consistent ? 0 : 1;
}
