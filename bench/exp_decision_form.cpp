// TLIM: the §7 decision form.  tasks(T_lim) must be the exact inverse
// staircase of the optimal makespan curve, for chains and spiders.

#include <iostream>

#include "mst/common/cli.hpp"
#include "mst/common/rng.hpp"
#include "mst/common/table.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/platform/generator.hpp"

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 12));

  Rng rng(seed);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  const Chain chain = random_chain(rng, 4, params);
  const Spider spider = random_spider(rng, 3, 2, params);

  std::cout << "TLIM — decision form tasks(T) vs makespan form, chain edition\n";
  std::cout << "chain: " << chain.describe() << "\n\n";

  constexpr std::size_t kMax = 12;
  bool consistent = true;

  {
    std::vector<Time> makespans(kMax + 1);
    for (std::size_t k = 1; k <= kMax; ++k) makespans[k] = ChainScheduler::makespan(chain, k);
    Table table({"k", "makespan(k)", "tasks(makespan(k))", "tasks(makespan(k)-1)"});
    for (std::size_t k = 1; k <= kMax; ++k) {
      const std::size_t at = ChainScheduler::max_tasks(chain, makespans[k], kMax + 2);
      const std::size_t below = ChainScheduler::max_tasks(chain, makespans[k] - 1, kMax + 2);
      table.row().cell(k).cell(makespans[k]).cell(at).cell(below);
      consistent = consistent && at >= k && below < k;
    }
    table.print(std::cout);
  }

  std::cout << "\nspider: " << spider.describe() << "\n\n";
  {
    std::vector<Time> makespans(kMax + 1);
    for (std::size_t k = 1; k <= kMax; ++k) makespans[k] = SpiderScheduler::makespan(spider, k);
    Table table({"k", "makespan(k)", "tasks(makespan(k))", "tasks(makespan(k)-1)"});
    for (std::size_t k = 1; k <= kMax; ++k) {
      const std::size_t at = SpiderScheduler::max_tasks(spider, makespans[k], kMax + 2);
      const std::size_t below = SpiderScheduler::max_tasks(spider, makespans[k] - 1, kMax + 2);
      table.row().cell(k).cell(makespans[k]).cell(at).cell(below);
      consistent = consistent && at >= k && below < k;
    }
    table.print(std::cout);
  }

  std::cout << (consistent
                    ? "\nRESULT: decision and makespan forms are exact duals everywhere\n"
                    : "\nRESULT: DUALITY VIOLATION\n");
  return consistent ? 0 : 1;
}
