// TREE: the paper's §8 outlook — scheduling general trees by covering them
// with spiders.  Every contender is resolved through the algorithm registry
// (like exp_heuristics), so a newly registered tree algorithm joins this
// table with no changes here.  Ratios are against the bandwidth-centric
// steady-state lower bound of the full tree.

#include <cmath>
#include <iostream>
#include <map>
#include <string>

#include "mst/api/registry.hpp"
#include "mst/baselines/bounds.hpp"
#include "mst/common/cli.hpp"
#include "mst/common/rng.hpp"
#include "mst/common/stats.hpp"
#include "mst/common/table.hpp"
#include "mst/platform/generator.hpp"

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 25));
  if (trials < 1) {
    std::cerr << "--trials must be >= 1\n";
    return 2;
  }
  const auto n = static_cast<std::size_t>(args.get_int("n", 32));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 4));

  std::cout << "TREE — general trees via spider covering (paper §8 outlook)\n"
            << "(" << trials << " random trees per size, n=" << n
            << " tasks; ratios vs the steady-state lower bound n/rate;\n"
            << "contenders discovered from the registry)\n\n";

  // The makespan-only fast path: ranking needs no placement vectors, and
  // the online policies stay reproducible through the options seed.
  api::SolveOptions options;
  options.materialize = false;
  options.seed = 1;

  const std::vector<api::AlgorithmInfo> algos = api::registry().list(api::PlatformKind::kTree);

  Table table({"slaves", "algorithm", "mean ratio to LB", "max ratio to LB"});
  for (std::size_t slaves : {4u, 8u, 16u}) {
    std::map<std::string, Sample> ratios;
    Rng rng(seed + slaves);
    GeneratorParams params{1, 9, PlatformClass::kUniform};
    for (int t = 0; t < trials; ++t) {
      Rng inst = rng.split();
      const api::Platform tree = random_tree(inst, slaves, params);
      const double rate = tree_steady_state_rate(std::get<Tree>(tree));
      const double lb = std::max(1.0, static_cast<double>(n) / rate);

      for (const api::AlgorithmInfo& info : algos) {
        const api::SolveResult result = api::registry().solve(tree, info.name, n, options);
        ratios[info.name].add(static_cast<double>(result.makespan) / lb);
      }
    }
    for (const api::AlgorithmInfo& info : algos) {
      const Sample& sample = ratios.at(info.name);
      table.row().cell(slaves).cell(info.name).cell(sample.mean(), 3).cell(sample.max(), 3);
    }
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: ratios >= 1 (the LB relaxes the one-port structure);\n"
               "the cover wins when trees are path-heavy, loses ground on bushy trees\n"
               "where it parks off-path processors — the open trade-off of §8.  The\n"
               "online policies (no lookahead) trail the offline plans, with\n"
               "online-random worst — heterogeneity-blind and sequence-blind.\n";
  return 0;
}
