// TREE: the paper's §8 outlook — scheduling general trees by covering them
// with spiders.  Compares the cover-and-plan heuristic against the online
// policies (which use every node) and the bandwidth-centric steady-state
// lower bound of the full tree.

#include <cmath>
#include <iostream>

#include "mst/baselines/bounds.hpp"
#include "mst/common/cli.hpp"
#include "mst/common/rng.hpp"
#include "mst/common/stats.hpp"
#include "mst/common/table.hpp"
#include "mst/heuristics/local_search.hpp"
#include "mst/heuristics/tree_schedule.hpp"
#include "mst/platform/generator.hpp"
#include "mst/sim/online.hpp"

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 25));
  const auto n = static_cast<std::size_t>(args.get_int("n", 32));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 4));

  std::cout << "TREE — general trees via spider covering (paper §8 outlook)\n"
            << "(" << trials << " random trees per size, n=" << n
            << " tasks; ratios vs the steady-state lower bound n/rate)\n\n";

  Table table({"slaves", "strategy", "mean ratio to LB", "max ratio to LB"});

  for (std::size_t slaves : {4u, 8u, 16u}) {
    Sample cover_r;
    Sample ect_r;
    Sample jsq_r;
    Sample ls_r;
    Rng rng(seed + slaves);
    GeneratorParams params{1, 9, PlatformClass::kUniform};
    for (int t = 0; t < trials; ++t) {
      Rng inst = rng.split();
      const Tree tree = random_tree(inst, slaves, params);
      const double rate = tree_steady_state_rate(tree);
      const double lb = std::max(1.0, static_cast<double>(n) / rate);

      const TreeScheduleResult plan = schedule_tree_via_cover(tree, n);
      cover_r.add(static_cast<double>(plan.simulated.makespan) / lb);
      ls_r.add(static_cast<double>(local_search_tree(tree, n, 4).makespan) / lb);
      ect_r.add(static_cast<double>(
                    sim::simulate_online(tree, n, sim::OnlinePolicy::kEarliestCompletion, 1)
                        .makespan) /
                lb);
      jsq_r.add(static_cast<double>(
                    sim::simulate_online(tree, n, sim::OnlinePolicy::kJoinShortestQueue, 1)
                        .makespan) /
                lb);
    }
    table.row().cell(slaves).cell("spider cover + optimal plan").cell(cover_r.mean(), 3).cell(
        cover_r.max(), 3);
    table.row().cell(slaves).cell("greedy + local search").cell(ls_r.mean(), 3).cell(
        ls_r.max(), 3);
    table.row().cell(slaves).cell("ECT (online, all nodes)").cell(ect_r.mean(), 3).cell(
        ect_r.max(), 3);
    table.row().cell(slaves).cell("JSQ (online, all nodes)").cell(jsq_r.mean(), 3).cell(
        jsq_r.max(), 3);
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: ratios >= 1 (the LB relaxes the one-port structure);\n"
               "the cover wins when trees are path-heavy, loses ground on bushy trees\n"
               "where it parks off-path processors — the open trade-off of §8.\n";
  return 0;
}
