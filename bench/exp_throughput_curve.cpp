// CURVE: the makespan curve M(n) and its affine tail — where the paper's
// finite-horizon optimum meets the steady-state analysis it cites.  Prints
// M(n), the marginal cost per task, the fitted (startup, rate) split and
// the warm-up length needed to reach 95% / 99% of the LP rate.

#include <iostream>

#include "mst/analysis/throughput.hpp"
#include "mst/common/cli.hpp"
#include "mst/common/rng.hpp"
#include "mst/common/table.hpp"
#include "mst/platform/generator.hpp"

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 31));

  std::cout << "CURVE — optimal makespan curve and its affine steady-state tail\n\n";

  Rng rng(seed);
  GeneratorParams params{1, 9, PlatformClass::kUniform};

  {
    const Chain chain = random_chain(rng, 5, params);
    std::cout << "chain: " << chain.describe() << "\n";
    const ThroughputCurve curve =
        chain_throughput_curve(chain, {1, 2, 4, 8, 16, 32, 64, 128, 256, 512});
    Table table({"n", "M(n)", "marginal", "throughput"});
    for (std::size_t i = 0; i < curve.n.size(); ++i) {
      table.row().cell(curve.n[i]).cell(curve.makespan[i]).cell(curve.marginal[i]).cell(
          static_cast<double>(curve.n[i]) / static_cast<double>(curve.makespan[i]), 4);
    }
    table.print(std::cout);
    std::cout << "LP steady-state rate : " << curve.steady_rate << "\n";
    std::cout << "fitted tail rate     : " << curve.fitted_rate << "\n";
    std::cout << "fitted startup cost  : " << curve.fitted_startup << "\n";
    std::cout << "efficiency at n=512  : " << curve.efficiency_at_tail() << "\n";
    std::cout << "tasks to reach 95% of rate: " << tasks_to_reach_rate_fraction(chain, 0.95)
              << "\n";
    std::cout << "tasks to reach 99% of rate: " << tasks_to_reach_rate_fraction(chain, 0.99)
              << "\n\n";
  }

  {
    const Spider spider = random_spider(rng, 4, 3, params);
    std::cout << "spider: " << spider.describe() << "\n";
    const ThroughputCurve curve = spider_throughput_curve(spider, {1, 2, 4, 8, 16, 32, 64, 128});
    Table table({"n", "M(n)", "marginal", "throughput"});
    for (std::size_t i = 0; i < curve.n.size(); ++i) {
      table.row().cell(curve.n[i]).cell(curve.makespan[i]).cell(curve.marginal[i]).cell(
          static_cast<double>(curve.n[i]) / static_cast<double>(curve.makespan[i]), 4);
    }
    table.print(std::cout);
    std::cout << "LP steady-state rate : " << curve.steady_rate << "\n";
    std::cout << "fitted tail rate     : " << curve.fitted_rate << "\n";
    std::cout << "fitted startup cost  : " << curve.fitted_startup << "\n";
    std::cout << "efficiency at n=128  : " << curve.efficiency_at_tail() << "\n";
  }

  std::cout << "\nExpected shape: marginal cost settles at 1/rate; the curve is\n"
               "startup + n/rate in the tail, tying Theorem 1 to the steady-state\n"
               "literature the paper cites ([1], [4], [10]).\n";
  return 0;
}
