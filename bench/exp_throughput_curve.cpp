// CURVE: the makespan curve M(n) and its affine tail — where the paper's
// finite-horizon optimum meets the steady-state analysis it cites.  Prints
// M(n), the marginal cost per task, the fitted (startup, rate) split and
// the warm-up length needed to reach 95% / 99% of the LP rate.
//
// Platforms come from the scenario generators; the curves are sampled by
// the registry-driven `api::throughput_curve` (api/curves.hpp), i.e.
// every makespan is an `api::Registry` dispatch on the fast path.

#include <iostream>
#include <variant>

#include "mst/api/curves.hpp"
#include "mst/common/cli.hpp"
#include "mst/common/table.hpp"
#include "mst/scenario/generators.hpp"

namespace {

void print_curve(const mst::ThroughputCurve& curve) {
  using namespace mst;
  Table table({"n", "M(n)", "marginal", "throughput"});
  for (std::size_t i = 0; i < curve.n.size(); ++i) {
    table.row().cell(curve.n[i]).cell(curve.makespan[i]).cell(curve.marginal[i]).cell(
        static_cast<double>(curve.n[i]) / static_cast<double>(curve.makespan[i]), 4);
  }
  table.print(std::cout);
  std::cout << "LP steady-state rate : " << curve.steady_rate << "\n";
  std::cout << "fitted tail rate     : " << curve.fitted_rate << "\n";
  std::cout << "fitted startup cost  : " << curve.fitted_startup << "\n";
  std::cout << "efficiency at n=" << curve.n.back() << "  : " << curve.efficiency_at_tail()
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 31));

  std::cout << "CURVE — optimal makespan curve and its affine steady-state tail\n\n";

  {
    scenario::PlatformSpec spec;
    spec.kind = api::PlatformKind::kChain;
    spec.size = 5;
    spec.lo = 1;
    spec.hi = 9;
    const api::Platform chain = scenario::make_platform(spec, scenario::derive_seed(seed, 0));
    std::cout << "chain: " << api::describe(chain) << "\n";
    print_curve(api::throughput_curve(chain, {1, 2, 4, 8, 16, 32, 64, 128, 256, 512}));
    std::cout << "tasks to reach 95% of rate: "
              << tasks_to_reach_rate_fraction(std::get<Chain>(chain), 0.95) << "\n";
    std::cout << "tasks to reach 99% of rate: "
              << tasks_to_reach_rate_fraction(std::get<Chain>(chain), 0.99) << "\n\n";
  }

  {
    scenario::PlatformSpec spec;
    spec.kind = api::PlatformKind::kSpider;
    spec.size = 4;  // legs
    spec.lo = 1;
    spec.hi = 9;
    spec.min_leg_len = 1;
    spec.max_leg_len = 3;
    const api::Platform spider = scenario::make_platform(spec, scenario::derive_seed(seed, 1));
    std::cout << "spider: " << api::describe(spider) << "\n";
    print_curve(api::throughput_curve(spider, {1, 2, 4, 8, 16, 32, 64, 128}));
  }

  std::cout << "\nExpected shape: marginal cost settles at 1/rate; the curve is\n"
               "startup + n/rate in the tail, tying Theorem 1 to the steady-state\n"
               "literature the paper cites ([1], [4], [10]).\n";
  return 0;
}
