// FIG7: regenerates the paper's Figure 7 — the transformation of the Fig 2
// chain schedule into a fork graph of single-task nodes.
//
// Expected (paper): five virtual nodes, all behind links of latency 2, with
// processing times {12, 10, 8, 6, 3}; the node with processing time 8
// corresponds to the task executed on the second processor.

#include <iostream>

#include "mst/common/table.hpp"
#include "mst/core/spider_scheduler.hpp"

int main() {
  using namespace mst;
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  const Time t_lim = 14;

  std::cout << "FIG7 — chain schedule -> fork graph transformation\n";
  std::cout << "platform: " << chain.describe() << ", T_lim=" << t_lim << "\n\n";

  const SpiderTransformation tf = SpiderScheduler::transform(Spider{chain}, t_lim, 100);
  const ChainSchedule& within = tf.leg_schedules[0];

  Table table({"task (by emission)", "C_1", "dest proc (1-based)", "virtual node: comm",
               "virtual node: processing time"});
  for (std::size_t j = 0; j < tf.nodes.size(); ++j) {
    table.row()
        .cell(j + 1)
        .cell(within.tasks[j].emissions.front())
        .cell(within.tasks[j].proc + 1)
        .cell(tf.nodes[j].comm)
        .cell(tf.nodes[j].exec);
  }
  table.print(std::cout);

  const std::vector<Time> expected = {12, 10, 8, 6, 3};
  bool ok = tf.nodes.size() == expected.size();
  for (std::size_t j = 0; ok && j < expected.size(); ++j) {
    ok = tf.nodes[j].exec == expected[j] && tf.nodes[j].comm == 2;
  }
  // The paper's cross-reference: the second-processor task is node "8".
  bool node8_on_second = false;
  for (std::size_t j = 0; j < tf.nodes.size(); ++j) {
    if (tf.nodes[j].exec == 8 && within.tasks[j].proc == 1) node8_on_second = true;
  }

  std::cout << "\npaper's node processing times : {12, 10, 8, 6, 3} over links of 2\n";
  std::cout << "node 8 is the second-processor task: " << (node8_on_second ? "yes" : "NO")
            << '\n';
  std::cout << ((ok && node8_on_second) ? "RESULT: reproduces the paper exactly\n"
                                        : "RESULT: MISMATCH with the paper\n");
  return (ok && node8_on_second) ? 0 : 1;
}
