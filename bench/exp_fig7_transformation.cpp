// FIG7: regenerates the paper's Figure 7 — the transformation of the Fig 2
// chain schedule into a fork graph of single-task nodes.  The table
// inspects `SpiderScheduler::transform` (the intermediate artifact the
// registry cannot expose); the end-to-end counts are cross-checked through
// the registry's decision and makespan forms.
//
// Expected (paper): five virtual nodes, all behind links of latency 2, with
// processing times {12, 10, 8, 6, 3}; the node with processing time 8
// corresponds to the task executed on the second processor.

#include <iostream>

#include "mst/api/registry.hpp"
#include "mst/common/table.hpp"
#include "mst/core/spider_scheduler.hpp"

int main() {
  using namespace mst;
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  const Time t_lim = 14;

  std::cout << "FIG7 — chain schedule -> fork graph transformation\n";
  std::cout << "platform: " << chain.describe() << ", T_lim=" << t_lim << "\n\n";

  const SpiderTransformation tf = SpiderScheduler::transform(Spider{chain}, t_lim, 100);
  const ChainSchedule& within = tf.leg_schedules[0];

  Table table({"task (by emission)", "C_1", "dest proc (1-based)", "virtual node: comm",
               "virtual node: processing time"});
  for (std::size_t j = 0; j < tf.nodes.size(); ++j) {
    table.row()
        .cell(j + 1)
        .cell(within.tasks[j].emissions.front())
        .cell(within.tasks[j].proc + 1)
        .cell(tf.nodes[j].comm)
        .cell(tf.nodes[j].exec);
  }
  table.print(std::cout);

  const std::vector<Time> expected = {12, 10, 8, 6, 3};
  bool ok = tf.nodes.size() == expected.size();
  for (std::size_t j = 0; ok && j < expected.size(); ++j) {
    ok = tf.nodes[j].exec == expected[j] && tf.nodes[j].comm == 2;
  }
  // The paper's cross-reference: the second-processor task is node "8".
  bool node8_on_second = false;
  for (std::size_t j = 0; j < tf.nodes.size(); ++j) {
    if (tf.nodes[j].exec == 8 && within.tasks[j].proc == 1) node8_on_second = true;
  }

  // Registry cross-check: the transformation feeds the spider decision
  // form, so within T_lim the registry must pack exactly the five Fig 2
  // tasks, and the makespan form must invert that back to 14.
  const api::Platform spider = Spider{chain};
  const std::size_t packed = api::registry().max_tasks(spider, "optimal", t_lim);
  const Time makespan5 = api::registry().solve(spider, "optimal", 5).makespan;
  const bool registry_ok = packed == 5 && makespan5 == 14;

  std::cout << "\npaper's node processing times : {12, 10, 8, 6, 3} over links of 2\n";
  std::cout << "node 8 is the second-processor task: " << (node8_on_second ? "yes" : "NO")
            << '\n';
  std::cout << "registry: max-tasks(T=14) = " << packed << ", makespan(5) = " << makespan5
            << (registry_ok ? "  (consistent)" : "  (MISMATCH)") << '\n';
  std::cout << ((ok && node8_on_second && registry_ok)
                    ? "RESULT: reproduces the paper exactly\n"
                    : "RESULT: MISMATCH with the paper\n");
  return (ok && node8_on_second && registry_ok) ? 0 : 1;
}
