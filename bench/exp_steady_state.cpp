// STEADY: the divisible-load / steady-state link the paper draws in §1.
// The optimal schedules must approach the bandwidth-centric steady-state
// rate as n grows (and may never exceed it — it is a busy-time bound).
//
// Platforms come from the scenario generators and every makespan is a
// registry dispatch on the count-only fast path; only the periodic-pattern
// analytics (rates, hyperperiod) read the bandwidth-centric construction
// directly, since the registry's "periodic" entry exposes just its
// schedules.

#include <iostream>
#include <variant>

#include "mst/api/registry.hpp"
#include "mst/baselines/bounds.hpp"
#include "mst/baselines/periodic.hpp"
#include "mst/common/cli.hpp"
#include "mst/common/fmt.hpp"
#include "mst/common/table.hpp"
#include "mst/scenario/generators.hpp"

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  std::cout << "STEADY — optimal throughput vs bandwidth-centric steady-state rate\n\n";

  api::SolveOptions fast;
  fast.materialize = false;

  scenario::PlatformSpec chain_spec;
  chain_spec.kind = api::PlatformKind::kChain;
  chain_spec.size = 5;
  chain_spec.lo = 1;
  chain_spec.hi = 9;
  const api::Platform chain_platform =
      scenario::make_platform(chain_spec, scenario::derive_seed(seed, 0));
  const Chain& chain = std::get<Chain>(chain_platform);

  {
    const double rate = chain_steady_state_rate(chain);
    std::cout << "chain: " << chain.describe() << "\n";
    std::cout << "steady-state rate (LP): " << format_double(rate) << " tasks/unit\n";
    Table table({"n", "optimal makespan", "throughput n/makespan", "fraction of rate"});
    for (std::size_t n : {4u, 16u, 64u, 256u, 1024u}) {
      const api::SolveResult r = api::registry().solve(chain_platform, "optimal", n, fast);
      const double tp = r.throughput();
      table.row().cell(n).cell(r.makespan).cell(tp, 4).cell(tp / rate, 4);
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  {
    scenario::PlatformSpec spider_spec;
    spider_spec.kind = api::PlatformKind::kSpider;
    spider_spec.size = 4;  // legs
    spider_spec.lo = 1;
    spider_spec.hi = 9;
    spider_spec.min_leg_len = 1;
    spider_spec.max_leg_len = 3;
    const api::Platform spider_platform =
        scenario::make_platform(spider_spec, scenario::derive_seed(seed, 1));
    const Spider& spider = std::get<Spider>(spider_platform);
    const double rate = spider_steady_state_rate(spider);
    std::cout << "spider: " << spider.describe() << "\n";
    std::cout << "steady-state rate (one-port fill): " << format_double(rate) << " tasks/unit\n";
    Table table({"n", "optimal makespan", "throughput", "fraction of rate"});
    for (std::size_t n : {4u, 16u, 64u, 256u}) {
      const api::SolveResult r = api::registry().solve(spider_platform, "optimal", n, fast);
      const double tp = r.throughput();
      table.row().cell(n).cell(r.makespan).cell(tp, 4).cell(tp / rate, 4);
    }
    table.print(std::cout);
  }

  // Constructive counterpart: the periodic bandwidth-centric schedule (the
  // registry's "periodic" entry), sampled at whole numbers of periods.
  {
    const PeriodicPattern pattern = chain_periodic_pattern(chain);
    std::cout << "\nperiodic construction on the same chain:\n";
    std::cout << "exact LP rates:";
    for (const Rational& r : pattern.rates) std::cout << ' ' << r.to_string();
    std::cout << "  (hyperperiod " << pattern.hyperperiod << ", "
              << pattern.tasks_per_period() << " tasks/period)\n";
    Table table({"periods", "tasks", "makespan", "throughput", "fraction of LP rate"});
    for (std::size_t reps : {1u, 4u, 16u, 64u}) {
      const std::size_t n = reps * pattern.tasks_per_period();
      const api::SolveResult r = api::registry().solve(chain_platform, "periodic", n, fast);
      const double tp = r.throughput();
      table.row()
          .cell(reps)
          .cell(r.tasks)
          .cell(r.makespan)
          .cell(tp, 4)
          .cell(tp / pattern.rate(), 4);
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: 'fraction of rate' climbs toward 1.000 from below\n"
               "as n grows — the finite-schedule startup/drain cost amortizes away;\n"
               "the explicit periodic pattern converges to the same rate, from its\n"
               "own (slightly larger) startup transient.\n";
  return 0;
}
