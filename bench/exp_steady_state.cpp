// STEADY: the divisible-load / steady-state link the paper draws in §1.
// The optimal schedules must approach the bandwidth-centric steady-state
// rate as n grows (and may never exceed it — it is a busy-time bound).

#include <iostream>

#include "mst/baselines/bounds.hpp"
#include "mst/baselines/periodic.hpp"
#include "mst/common/cli.hpp"
#include "mst/common/rng.hpp"
#include "mst/common/table.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/platform/generator.hpp"

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  std::cout << "STEADY — optimal throughput vs bandwidth-centric steady-state rate\n\n";

  {
    Rng rng(seed);
    GeneratorParams params{1, 9, PlatformClass::kUniform};
    const Chain chain = random_chain(rng, 5, params);
    const double rate = chain_steady_state_rate(chain);
    std::cout << "chain: " << chain.describe() << "\n";
    std::cout << "steady-state rate (LP): " << rate << " tasks/unit\n";
    Table table({"n", "optimal makespan", "throughput n/makespan", "fraction of rate"});
    for (std::size_t n : {4u, 16u, 64u, 256u, 1024u}) {
      const Time m = ChainScheduler::makespan(chain, n);
      const double tp = static_cast<double>(n) / static_cast<double>(m);
      table.row().cell(n).cell(m).cell(tp, 4).cell(tp / rate, 4);
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  {
    Rng rng(seed + 1);
    GeneratorParams params{1, 9, PlatformClass::kUniform};
    const Spider spider = random_spider(rng, 4, 3, params);
    const double rate = spider_steady_state_rate(spider);
    std::cout << "spider: " << spider.describe() << "\n";
    std::cout << "steady-state rate (one-port fill): " << rate << " tasks/unit\n";
    Table table({"n", "optimal makespan", "throughput", "fraction of rate"});
    for (std::size_t n : {4u, 16u, 64u, 256u}) {
      const Time m = SpiderScheduler::makespan(spider, n);
      const double tp = static_cast<double>(n) / static_cast<double>(m);
      table.row().cell(n).cell(m).cell(tp, 4).cell(tp / rate, 4);
    }
    table.print(std::cout);
  }

  // Constructive counterpart: the periodic bandwidth-centric schedule.
  {
    Rng rng(seed);
    GeneratorParams params{1, 9, PlatformClass::kUniform};
    const Chain chain = random_chain(rng, 5, params);
    const PeriodicPattern pattern = chain_periodic_pattern(chain);
    std::cout << "\nperiodic construction on the same chain:\n";
    std::cout << "exact LP rates:";
    for (const Rational& r : pattern.rates) std::cout << ' ' << r.to_string();
    std::cout << "  (hyperperiod " << pattern.hyperperiod << ", "
              << pattern.tasks_per_period() << " tasks/period)\n";
    Table table({"periods", "tasks", "makespan", "throughput", "fraction of LP rate"});
    for (std::size_t reps : {1u, 4u, 16u, 64u}) {
      const ChainSchedule s = periodic_chain_schedule(chain, pattern, reps);
      const double tp =
          static_cast<double>(s.num_tasks()) / static_cast<double>(s.makespan());
      table.row()
          .cell(reps)
          .cell(s.num_tasks())
          .cell(s.makespan())
          .cell(tp, 4)
          .cell(tp / pattern.rate(), 4);
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: 'fraction of rate' climbs toward 1.000 from below\n"
               "as n grows — the finite-schedule startup/drain cost amortizes away;\n"
               "the explicit periodic pattern converges to the same rate, from its\n"
               "own (slightly larger) startup transient.\n";
  return 0;
}
