// CPLX-CHAIN: microbenchmarks of the chain algorithm — the paper claims
// O(n·p²); the n-sweep must scale linearly and the p-sweep quadratically
// (see exp_scaling for the fitted exponents).

#include <benchmark/benchmark.h>

#include <cstdint>

#include "mst/common/rng.hpp"
#include "mst/schedule/feasibility.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/platform/generator.hpp"

namespace {

mst::Chain make_chain(std::size_t p) {
  mst::Rng rng(0xC4A1F + p);
  return mst::random_chain(rng, p, {1, 10, mst::PlatformClass::kUniform});
}

void BM_ChainScheduleTasksSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const mst::Chain chain = make_chain(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mst::ChainScheduler::schedule(chain, n));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ChainScheduleTasksSweep)->RangeMultiplier(2)->Range(64, 4096)->Complexity();

void BM_ChainScheduleProcsSweep(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const mst::Chain chain = make_chain(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mst::ChainScheduler::schedule(chain, 256));
  }
  state.SetComplexityN(static_cast<std::int64_t>(p));
}
BENCHMARK(BM_ChainScheduleProcsSweep)->RangeMultiplier(2)->Range(2, 128)->Complexity(benchmark::oNSquared);

void BM_ChainDecisionForm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const mst::Chain chain = make_chain(16);
  const mst::Time window = chain.t_infinity(n) / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mst::ChainScheduler::max_tasks(chain, window, n));
  }
}
BENCHMARK(BM_ChainDecisionForm)->RangeMultiplier(4)->Range(64, 4096);

void BM_ChainFeasibilityCheck(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const mst::Chain chain = make_chain(16);
  const mst::ChainSchedule s = mst::ChainScheduler::schedule(chain, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mst::check_feasibility(s));
  }
}
BENCHMARK(BM_ChainFeasibilityCheck)->RangeMultiplier(4)->Range(64, 1024);

}  // namespace
