// CPLX-CHAIN: microbenchmarks of the chain algorithm — the paper claims
// O(n·p²); the n-sweep must scale linearly and the p-sweep quadratically
// (see exp_scaling for the fitted exponents).  Timing harness shared with
// the other bench_* binaries: bench/bench_harness.hpp; the committed
// baseline is bench/BENCH_chain.json.

#include <cstddef>
#include <vector>

#include "bench_harness.hpp"
#include "mst/common/rng.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/platform/generator.hpp"
#include "mst/schedule/feasibility.hpp"

namespace {

using mst::bench::Row;
using mst::bench::keep;
using mst::bench::time_op;

mst::Chain make_chain(std::size_t p) {
  mst::Rng rng(0xC4A1F + p);
  return mst::random_chain(rng, p, {1, 10, mst::PlatformClass::kUniform});
}

std::vector<Row> run_all() {
  std::vector<Row> rows;
  const mst::Chain chain16 = make_chain(16);

  for (std::size_t n = 64; n <= 4096; n *= 2) {
    rows.push_back({"chain_schedule_tasks", n, time_op([&] {
                      keep(mst::ChainScheduler::schedule(chain16, n));
                    })});
  }
  for (std::size_t p = 2; p <= 128; p *= 2) {
    const mst::Chain chain = make_chain(p);
    rows.push_back({"chain_schedule_procs", p, time_op([&] {
                      keep(mst::ChainScheduler::schedule(chain, 256));
                    })});
  }
  for (std::size_t n = 64; n <= 4096; n *= 4) {
    const mst::Time window = chain16.t_infinity(n) / 2;
    rows.push_back({"chain_decision_form", n, time_op([&] {
                      keep(mst::ChainScheduler::max_tasks(chain16, window, n));
                    })});
  }
  for (std::size_t n = 64; n <= 1024; n *= 4) {
    const mst::ChainSchedule schedule = mst::ChainScheduler::schedule(chain16, n);
    rows.push_back({"chain_feasibility_check", n, time_op([&] {
                      keep(mst::check_feasibility(schedule));
                    })});
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  return mst::bench::bench_main(argc, argv, "bench_chain", run_all);
}
