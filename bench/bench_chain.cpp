// CPLX-CHAIN: microbenchmarks of the chain algorithm — the paper claims
// O(n·p²); the n-sweep must scale linearly and the p-sweep quadratically
// (see exp_scaling for the fitted exponents).
//
// Self-contained timing harness (no Google Benchmark dependency, so this
// binary always builds): each subject runs over std::chrono::steady_clock
// in calibrated batches, reporting the minimum ns/op across repetitions —
// the least-noise estimate.  `--json` emits one {bench, n, ns_per_op}
// record per row; bench/BENCH_chain.json holds the committed baseline that
// future runs are compared against.  `n` is the swept size parameter: task
// count for the n-sweeps, processor count for the procs sweep.

#include <chrono>
#include <cstddef>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "mst/common/fmt.hpp"
#include "mst/common/rng.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/platform/generator.hpp"
#include "mst/schedule/feasibility.hpp"

namespace {

/// Defeats dead-code elimination without a benchmark-library dependency:
/// the empty asm claims to read memory through the pointer, so the
/// computation of `value` cannot be elided.
template <typename T>
void keep(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

mst::Chain make_chain(std::size_t p) {
  mst::Rng rng(0xC4A1F + p);
  return mst::random_chain(rng, p, {1, 10, mst::PlatformClass::kUniform});
}

struct Row {
  std::string bench;
  std::size_t n = 0;
  double ns_per_op = 0.0;
};

/// Calibrates a batch size long enough to trust the clock (≥ 2 ms), then
/// returns the best per-op time over three batches.
double time_op(const std::function<void()>& op) {
  using Clock = std::chrono::steady_clock;
  const auto batch_ns = [&](std::size_t iters) {
    const Clock::time_point start = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) op();
    const auto elapsed = Clock::now() - start;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  };
  std::size_t iters = 1;
  long long ns = batch_ns(iters);
  while (ns < 2'000'000 && iters < (std::size_t{1} << 22)) {
    iters *= 2;
    ns = batch_ns(iters);
  }
  double best = static_cast<double>(ns) / static_cast<double>(iters);
  for (int repetition = 0; repetition < 2; ++repetition) {
    const double per_op =
        static_cast<double>(batch_ns(iters)) / static_cast<double>(iters);
    if (per_op < best) best = per_op;
  }
  return best;
}

std::vector<Row> run_all() {
  std::vector<Row> rows;
  const mst::Chain chain16 = make_chain(16);

  for (std::size_t n = 64; n <= 4096; n *= 2) {
    rows.push_back({"chain_schedule_tasks", n, time_op([&] {
                      keep(mst::ChainScheduler::schedule(chain16, n));
                    })});
  }
  for (std::size_t p = 2; p <= 128; p *= 2) {
    const mst::Chain chain = make_chain(p);
    rows.push_back({"chain_schedule_procs", p, time_op([&] {
                      keep(mst::ChainScheduler::schedule(chain, 256));
                    })});
  }
  for (std::size_t n = 64; n <= 4096; n *= 4) {
    const mst::Time window = chain16.t_infinity(n) / 2;
    rows.push_back({"chain_decision_form", n, time_op([&] {
                      keep(mst::ChainScheduler::max_tasks(chain16, window, n));
                    })});
  }
  for (std::size_t n = 64; n <= 1024; n *= 4) {
    const mst::ChainSchedule schedule = mst::ChainScheduler::schedule(chain16, n);
    rows.push_back({"chain_feasibility_check", n, time_op([&] {
                      keep(mst::check_feasibility(schedule));
                    })});
  }
  return rows;
}

void print_json(const std::vector<Row>& rows) {
  std::cout << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::cout << "  {\"bench\": \"" << rows[i].bench << "\", \"n\": " << rows[i].n
              << ", \"ns_per_op\": " << mst::format_double(rows[i].ns_per_op) << "}"
              << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  std::cout << "]\n";
}

void print_table(const std::vector<Row>& rows) {
  for (const Row& row : rows) {
    std::cout << row.bench << " n=" << row.n
              << " ns/op=" << mst::format_double(row.ns_per_op) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::cerr << "usage: bench_chain [--json]\n";
      return 2;
    }
  }
  const std::vector<Row> rows = run_all();
  if (json) {
    print_json(rows);
  } else {
    print_table(rows);
  }
  return 0;
}
