// CPLX-CHAIN / CPLX-SPIDER: measured complexity of the algorithms.  The
// paper claims O(n·p²) for the chain algorithm (§3) and a polynomial below
// O(n²·p²) for the spider algorithm (Theorem 2).  This harness times the
// implementations over geometric sweeps and fits log-log slopes: the chain
// exponent in n must be ~1 and in p ~<=2.  Solves dispatch through the
// algorithm registry, so the measured path is the one the CLI and the other
// experiments exercise.

#include <chrono>
#include <functional>
#include <iostream>
#include <vector>

#include "mst/api/registry.hpp"
#include "mst/common/cli.hpp"
#include "mst/common/rng.hpp"
#include "mst/common/stats.hpp"
#include "mst/common/table.hpp"
#include "mst/platform/generator.hpp"

namespace {

double time_once(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count();
}

double time_best_of(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) best = std::min(best, time_once(fn));
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const int reps = static_cast<int>(args.get_int("reps", 3));
  GeneratorParams params{1, 10, PlatformClass::kUniform};

  std::cout << "CPLX — measured scaling of the schedulers (best of " << reps << " runs)\n\n";

  // Chain: sweep n at fixed p.
  {
    Table table({"n (p=16)", "time [us]", "us per task"});
    Rng rng(0xA11CE);
    const api::Platform chain = random_chain(rng, 16, params);
    std::vector<double> xs;
    std::vector<double> ys;
    for (std::size_t n = 128; n <= 8192; n *= 2) {
      const double us =
          time_best_of(reps, [&] { (void)api::registry().solve(chain, "optimal", n); });
      table.row().cell(n).cell(us, 1).cell(us / static_cast<double>(n), 4);
      xs.push_back(static_cast<double>(n));
      ys.push_back(us);
    }
    table.print(std::cout);
    std::cout << "fitted exponent in n: " << fit_loglog_slope(xs, ys)
              << "  (paper: 1.0 — O(n·p²))\n\n";
  }

  // Chain: sweep p at fixed n.
  {
    Table table({"p (n=512)", "time [us]"});
    std::vector<double> xs;
    std::vector<double> ys;
    for (std::size_t p = 4; p <= 256; p *= 2) {
      Rng rng(0xB0B + p);
      const api::Platform chain = random_chain(rng, p, params);
      const double us =
          time_best_of(reps, [&] { (void)api::registry().solve(chain, "optimal", 512); });
      table.row().cell(p).cell(us, 1);
      xs.push_back(static_cast<double>(p));
      ys.push_back(us);
    }
    table.print(std::cout);
    std::cout << "fitted exponent in p: " << fit_loglog_slope(xs, ys)
              << "  (paper: 2.0 — O(n·p²))\n\n";
  }

  // Spider: sweep n.
  {
    Table table({"n (6 legs x 3)", "time [us]"});
    std::vector<double> xs;
    std::vector<double> ys;
    Rng rng(0x5317);
    std::vector<Chain> legs;
    for (int l = 0; l < 6; ++l) legs.push_back(random_chain(rng, 3, params));
    const api::Platform spider = Spider(legs);
    for (std::size_t n = 32; n <= 1024; n *= 2) {
      const double us =
          time_best_of(reps, [&] { (void)api::registry().solve(spider, "optimal", n); });
      table.row().cell(n).cell(us, 1);
      xs.push_back(static_cast<double>(n));
      ys.push_back(us);
    }
    table.print(std::cout);
    std::cout << "fitted exponent in n: " << fit_loglog_slope(xs, ys)
              << "  (paper: <= 2.0 — Theorem 2, incl. the binary search)\n";
  }
  return 0;
}
