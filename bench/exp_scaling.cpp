// CPLX-CHAIN / CPLX-SPIDER: measured complexity of the algorithms.  The
// paper claims O(n·p²) for the chain algorithm (§3) and a polynomial below
// O(n²·p²) for the spider algorithm (Theorem 2).  This harness runs
// geometric sweeps as declarative scenario grids on the sweep runner
// (single-threaded, best-of-`reps` wall times, registry dispatch — the path
// the CLI and the other experiments exercise) and fits log-log slopes: the
// chain exponent in n must be ~1 and in p ~<=2.

#include <iostream>
#include <vector>

#include "mst/common/cli.hpp"
#include "mst/common/stats.hpp"
#include "mst/common/table.hpp"
#include "mst/scenario/runner.hpp"
#include "mst/scenario/spec.hpp"

namespace {

/// Runs one timing grid: single worker (timing integrity), payload-free
/// fast path, best-of-`reps` per cell.
std::vector<mst::scenario::CellOutcome> run_timing(const mst::scenario::SweepSpec& spec,
                                                   int reps) {
  mst::scenario::RunOptions options;
  options.threads = 1;
  options.materialize = false;
  options.reps = reps;
  return mst::scenario::run_sweep(spec, options);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 0xA11CE));

  std::cout << "CPLX — measured scaling of the schedulers (best of " << reps << " runs)\n\n";

  scenario::SweepSpec base;
  base.seed = seed;
  base.classes = {PlatformClass::kUniform};
  base.lo = 1;
  base.hi = 10;
  base.algorithms = {"optimal"};

  // Chain: sweep n at fixed p.
  {
    scenario::SweepSpec spec = base;
    spec.name = "cplx-chain-n";
    spec.kinds = {api::PlatformKind::kChain};
    spec.sizes = {16};
    spec.tasks = {128, 256, 512, 1024, 2048, 4096, 8192};

    Table table({"n (p=16)", "time [us]", "us per task"});
    std::vector<double> xs;
    std::vector<double> ys;
    for (const scenario::CellOutcome& out : run_timing(spec, reps)) {
      const double us = out.wall_ms * 1000.0;
      table.row().cell(out.cell.n).cell(us, 1).cell(us / static_cast<double>(out.cell.n), 4);
      xs.push_back(static_cast<double>(out.cell.n));
      ys.push_back(us);
    }
    table.print(std::cout);
    std::cout << "fitted exponent in n: " << fit_loglog_slope(xs, ys)
              << "  (paper: 1.0 — O(n·p²))\n\n";
  }

  // Chain: sweep p at fixed n.
  {
    scenario::SweepSpec spec = base;
    spec.name = "cplx-chain-p";
    spec.kinds = {api::PlatformKind::kChain};
    spec.sizes = {4, 8, 16, 32, 64, 128, 256};
    spec.tasks = {512};

    Table table({"p (n=512)", "time [us]"});
    std::vector<double> xs;
    std::vector<double> ys;
    for (const scenario::CellOutcome& out : run_timing(spec, reps)) {
      const double us = out.wall_ms * 1000.0;
      table.row().cell(out.cell.size).cell(us, 1);
      xs.push_back(static_cast<double>(out.cell.size));
      ys.push_back(us);
    }
    table.print(std::cout);
    std::cout << "fitted exponent in p: " << fit_loglog_slope(xs, ys)
              << "  (paper: 2.0 — O(n·p²))\n\n";
  }

  // Spider: sweep n (6 legs of exactly 3 processors).
  {
    scenario::SweepSpec spec = base;
    spec.name = "cplx-spider-n";
    spec.kinds = {api::PlatformKind::kSpider};
    spec.sizes = {6};
    spec.min_leg_len = 3;
    spec.max_leg_len = 3;
    spec.tasks = {32, 64, 128, 256, 512, 1024};

    Table table({"n (6 legs x 3)", "time [us]"});
    std::vector<double> xs;
    std::vector<double> ys;
    for (const scenario::CellOutcome& out : run_timing(spec, reps)) {
      const double us = out.wall_ms * 1000.0;
      table.row().cell(out.cell.n).cell(us, 1);
      xs.push_back(static_cast<double>(out.cell.n));
      ys.push_back(us);
    }
    table.print(std::cout);
    std::cout << "fitted exponent in n: " << fit_loglog_slope(xs, ys)
              << "  (paper: <= 2.0 — Theorem 2, incl. the binary search)\n";
  }
  return 0;
}
