// CPLX-FORK: microbenchmarks of the fork (star) scheduler — decision form,
// makespan binary search, the ascending-c greedy selector and Moore–Hodgson
// selection.  Timing harness shared with the other bench_* binaries:
// bench/bench_harness.hpp; the committed baseline is bench/BENCH_fork.json.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "bench_harness.hpp"
#include "mst/common/rng.hpp"
#include "mst/core/fork_scheduler.hpp"
#include "mst/core/moore_hodgson.hpp"
#include "mst/platform/generator.hpp"

namespace {

using mst::bench::Row;
using mst::bench::keep;
using mst::bench::time_op;

mst::Fork make_fork(std::size_t p) {
  mst::Rng rng(0xF0A4 + p);
  return mst::random_fork(rng, p, {1, 10, mst::PlatformClass::kUniform});
}

std::vector<Row> run_all() {
  std::vector<Row> rows;

  for (std::size_t p = 2; p <= 64; p *= 2) {
    const mst::Fork fork = make_fork(p);
    rows.push_back({"fork_decision_form", p, time_op([&] {
                      keep(mst::ForkScheduler::max_tasks(fork, 2000, 1024));
                    })});
  }
  {
    const mst::Fork fork16 = make_fork(16);
    for (std::size_t n = 16; n <= 1024; n *= 4) {
      rows.push_back({"fork_makespan_form", n, time_op([&] {
                        keep(mst::ForkScheduler::makespan(fork16, n));
                      })});
    }
  }
  for (std::size_t p = 2; p <= 32; p *= 4) {
    const mst::Fork fork = make_fork(p);
    rows.push_back({"fork_greedy_selector", p, time_op([&] {
                      keep(mst::ForkScheduler::greedy_max_tasks(fork, 2000, 1024));
                    })});
  }
  // Moore–Hodgson times selection over a fresh copy each op — the copy is
  // part of the measured cost, identically across n, so the n-sweep still
  // exposes the O(n log n) selection.
  for (std::size_t n = 64; n <= 16384; n *= 4) {
    mst::Rng rng(0x3110);
    std::vector<mst::DeadlineJob> jobs;
    jobs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      jobs.push_back(
          {rng.uniform(1, 10), rng.uniform(1, static_cast<std::int64_t>(4 * n)), i});
    }
    rows.push_back({"moore_hodgson_selection", n, time_op([&] {
                      auto copy = jobs;
                      keep(mst::moore_hodgson(std::move(copy)));
                    })});
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  return mst::bench::bench_main(argc, argv, "bench_fork", run_all);
}
