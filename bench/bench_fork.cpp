// Microbenchmarks of the fork (star) scheduler: decision form, makespan
// binary search, Moore–Hodgson selection and the ascending-c greedy.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "mst/common/rng.hpp"
#include "mst/core/fork_scheduler.hpp"
#include "mst/core/moore_hodgson.hpp"
#include "mst/platform/generator.hpp"

namespace {

mst::Fork make_fork(std::size_t p) {
  mst::Rng rng(0xF0A4 + p);
  return mst::random_fork(rng, p, {1, 10, mst::PlatformClass::kUniform});
}

void BM_ForkDecisionForm(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const mst::Fork fork = make_fork(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mst::ForkScheduler::max_tasks(fork, 2000, 1024));
  }
}
BENCHMARK(BM_ForkDecisionForm)->RangeMultiplier(2)->Range(2, 64);

void BM_ForkMakespanForm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const mst::Fork fork = make_fork(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mst::ForkScheduler::makespan(fork, n));
  }
}
BENCHMARK(BM_ForkMakespanForm)->RangeMultiplier(4)->Range(16, 1024);

void BM_ForkGreedySelector(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const mst::Fork fork = make_fork(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mst::ForkScheduler::greedy_max_tasks(fork, 2000, 1024));
  }
}
BENCHMARK(BM_ForkGreedySelector)->RangeMultiplier(4)->Range(2, 32);

void BM_MooreHodgsonSelection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mst::Rng rng(0x3110);
  std::vector<mst::DeadlineJob> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back({rng.uniform(1, 10), rng.uniform(1, static_cast<std::int64_t>(4 * n)), i});
  }
  for (auto _ : state) {
    auto copy = jobs;
    benchmark::DoNotOptimize(mst::moore_hodgson(std::move(copy)));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MooreHodgsonSelection)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

}  // namespace
