#pragma once

// Shared self-contained timing harness for the bench_* binaries (no
// external benchmark dependency, so they always build): each subject runs
// over std::chrono::steady_clock in calibrated batches, reporting the
// minimum ns/op across repetitions — the least-noise estimate.  `--json`
// emits one {bench, n, ns_per_op} record per row; the committed
// bench/BENCH_*.json files hold the baselines future runs are compared
// against.  `n` is the swept size parameter (task count, processor count,
// leg count — whatever the subject varies).

#include <chrono>
#include <cstddef>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "mst/common/fmt.hpp"

namespace mst::bench {

/// Defeats dead-code elimination without a benchmark-library dependency:
/// the empty asm claims to read memory through the pointer, so the
/// computation of `value` cannot be elided.
template <typename T>
void keep(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

struct Row {
  std::string bench;
  std::size_t n = 0;
  double ns_per_op = 0.0;
};

/// Calibrates a batch size long enough to trust the clock (≥ 2 ms), then
/// returns the best per-op time over three batches.
inline double time_op(const std::function<void()>& op) {
  using Clock = std::chrono::steady_clock;
  const auto batch_ns = [&](std::size_t iters) {
    const Clock::time_point start = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) op();
    const auto elapsed = Clock::now() - start;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  };
  std::size_t iters = 1;
  long long ns = batch_ns(iters);
  while (ns < 2'000'000 && iters < (std::size_t{1} << 22)) {
    iters *= 2;
    ns = batch_ns(iters);
  }
  double best = static_cast<double>(ns) / static_cast<double>(iters);
  for (int repetition = 0; repetition < 2; ++repetition) {
    const double per_op =
        static_cast<double>(batch_ns(iters)) / static_cast<double>(iters);
    if (per_op < best) best = per_op;
  }
  return best;
}

inline void print_json(const std::vector<Row>& rows) {
  std::cout << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::cout << "  {\"bench\": \"" << rows[i].bench << "\", \"n\": " << rows[i].n
              << ", \"ns_per_op\": " << mst::format_double(rows[i].ns_per_op) << "}"
              << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  std::cout << "]\n";
}

inline void print_table(const std::vector<Row>& rows) {
  for (const Row& row : rows) {
    std::cout << row.bench << " n=" << row.n
              << " ns/op=" << mst::format_double(row.ns_per_op) << "\n";
  }
}

/// The shared main(): parses the single `--json` flag, runs the subjects,
/// prints.  `name` labels the usage line.
inline int bench_main(int argc, char** argv, const char* name,
                      const std::function<std::vector<Row>()>& run_all) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::cerr << "usage: " << name << " [--json]\n";
      return 2;
    }
  }
  const std::vector<Row> rows = run_all();
  if (json) {
    print_json(rows);
  } else {
    print_table(rows);
  }
  return 0;
}

}  // namespace mst::bench
