#pragma once

// Shared self-contained timing harness for the bench_* binaries (no
// external benchmark dependency, so they always build): each subject runs
// over std::chrono::steady_clock in calibrated batches, reporting the
// minimum ns/op across repetitions — the least-noise estimate.  `--json`
// emits one {bench, n, ns_per_op} record per row; the committed
// bench/BENCH_*.json files hold the baselines future runs are compared
// against — `--compare BENCH_x.json` prints per-bench ratios against one
// and exits nonzero when any row regresses past the threshold (CI runs it
// as an advisory step).  `n` is the swept size parameter (task count,
// processor count, leg count — whatever the subject varies).

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "mst/common/fmt.hpp"

namespace mst::bench {

/// Defeats dead-code elimination without a benchmark-library dependency:
/// the empty asm claims to read memory through the pointer, so the
/// computation of `value` cannot be elided.
template <typename T>
void keep(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

struct Row {
  std::string bench;
  std::size_t n = 0;
  double ns_per_op = 0.0;
};

/// Calibrates a batch size long enough to trust the clock (≥ 2 ms), then
/// returns the best per-op time over three batches.
inline double time_op(const std::function<void()>& op) {
  using Clock = std::chrono::steady_clock;
  const auto batch_ns = [&](std::size_t iters) {
    const Clock::time_point start = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) op();
    const auto elapsed = Clock::now() - start;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  };
  std::size_t iters = 1;
  long long ns = batch_ns(iters);
  while (ns < 2'000'000 && iters < (std::size_t{1} << 22)) {
    iters *= 2;
    ns = batch_ns(iters);
  }
  double best = static_cast<double>(ns) / static_cast<double>(iters);
  for (int repetition = 0; repetition < 2; ++repetition) {
    const double per_op =
        static_cast<double>(batch_ns(iters)) / static_cast<double>(iters);
    if (per_op < best) best = per_op;
  }
  return best;
}

inline void print_json(const std::vector<Row>& rows) {
  std::cout << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::cout << "  {\"bench\": \"" << rows[i].bench << "\", \"n\": " << rows[i].n
              << ", \"ns_per_op\": " << mst::format_double(rows[i].ns_per_op) << "}"
              << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  std::cout << "]\n";
}

inline void print_table(const std::vector<Row>& rows) {
  for (const Row& row : rows) {
    std::cout << row.bench << " n=" << row.n
              << " ns/op=" << mst::format_double(row.ns_per_op) << "\n";
  }
}

/// Parses a committed BENCH_*.json baseline (the exact `print_json`
/// format, one record per line).  Returns false on unreadable file or no
/// parsable rows.
inline bool read_baseline(const std::string& path, std::vector<Row>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  char name[128];
  while (std::getline(in, line)) {
    Row row;
    if (std::sscanf(line.c_str(), " {\"bench\": \"%127[^\"]\", \"n\": %zu, \"ns_per_op\": %lf",
                    name, &row.n, &row.ns_per_op) == 3) {
      row.bench = name;
      out.push_back(row);
    }
  }
  return !out.empty();
}

/// Prints per-bench current/baseline ratios, matched by (bench, n).  Rows
/// with no baseline counterpart are reported as new.  Returns 1 when any
/// matched row regressed past `threshold`, else 0 — CI runs this as an
/// advisory (non-blocking) step, so a noisy runner flags loudly without
/// failing the build.
inline int compare_rows(const std::vector<Row>& rows, const std::vector<Row>& baseline,
                        std::ostream& os, double threshold = 1.5) {
  int regressions = 0;
  for (const Row& row : rows) {
    const Row* base = nullptr;
    for (const Row& candidate : baseline) {
      if (candidate.bench == row.bench && candidate.n == row.n) {
        base = &candidate;
        break;
      }
    }
    if (base == nullptr) {
      os << row.bench << " n=" << row.n << " ns/op=" << mst::format_double(row.ns_per_op)
         << " (no baseline)\n";
      continue;
    }
    const double ratio = base->ns_per_op > 0.0 ? row.ns_per_op / base->ns_per_op : 0.0;
    const bool regressed = ratio > threshold;
    if (regressed) ++regressions;
    os << row.bench << " n=" << row.n << " ns/op=" << mst::format_double(row.ns_per_op)
       << " baseline=" << mst::format_double(base->ns_per_op)
       << " ratio=" << mst::format_double(ratio) << (regressed ? "  <-- REGRESSION" : "")
       << "\n";
  }
  if (regressions > 0) {
    os << regressions << " row(s) regressed past " << mst::format_double(threshold)
       << "x baseline\n";
  }
  return regressions > 0 ? 1 : 0;
}

/// The shared main(): parses `--json` and `--compare <baseline.json>`,
/// runs the subjects, prints.  With `--compare`, the ratio table goes to
/// stderr (stdout stays valid JSON under `--json`) and the exit code
/// reflects the comparison.  `name` labels the usage line.
inline int bench_main(int argc, char** argv, const char* name,
                      const std::function<std::vector<Row>()>& run_all) {
  bool json = false;
  std::string compare_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--compare") == 0 && i + 1 < argc) {
      compare_path = argv[++i];
    } else {
      std::cerr << "usage: " << name << " [--json] [--compare BENCH_baseline.json]\n";
      return 2;
    }
  }
  const std::vector<Row> rows = run_all();
  if (json) {
    print_json(rows);
  } else {
    print_table(rows);
  }
  if (!compare_path.empty()) {
    std::vector<Row> baseline;
    if (!read_baseline(compare_path, baseline)) {
      std::cerr << name << ": cannot read baseline " << compare_path << "\n";
      return 2;
    }
    return compare_rows(rows, baseline, std::cerr);
  }
  return 0;
}

}  // namespace mst::bench
